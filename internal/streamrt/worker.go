package streamrt

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ds2/internal/metrics"
	"ds2/internal/obs"
)

// message is one record inside an exchange batch.
type message struct {
	key string
	val any // direct value; nil once encoded into the batch buffer
	// encOff/encLen frame the record's encoded bytes inside the batch
	// buffer — the length prefix of the wire format lives here, in the
	// batch header, rather than inside the byte stream. Meaningful only
	// when the receiving operator declares a Codec.
	encOff, encLen int32
	src            time.Time // source emission instant, for sink latency samples
}

// batch is the unit of exchange between instances: up to
// Config.BatchSize records plus one shared buffer holding their encoded
// forms back to back. Batches are recycled through the job's pool (the
// receiver returns them after processing), so the steady-state exchange
// allocates nothing per record.
type batch struct {
	msgs []message
	buf  []byte
	// from marks a batch decoded off a transport link: recycling it
	// returns one flow-control credit to the sending worker, the
	// cross-process analogue of freeing a channel slot. Zero for
	// locally produced batches.
	from recvOrigin
}

// outEdge is one instance's view of a downstream operator: where to
// send, how to partition, and how to signal exit for the close
// cascade. Each instance owns its copy (the round-robin cursor and the
// pending batches are worker-goroutine state and must not be shared).
type outEdge struct {
	op        string
	keyed     bool
	codec     Codec
	appendEnc AppendEncoder // codec's zero-copy encode path, if it has one
	router    *router       // key -> instance, shared with state repartitioning
	chans     []chan *batch
	done      *sync.WaitGroup
	rr        int
	// Distributed deployments only. remote[k] is the credit gate for
	// target instance k when it lives on another worker (nil for local
	// targets); chans[k] is nil exactly when remote[k] isn't.
	// Round-robin edges deal over ALL global instances, remote
	// included — favouring local targets would concentrate load on the
	// sender's worker and break the uniform per-instance rates the
	// policy model assumes (a lone source would starve every remote
	// instance of its downstream operator). doneLinks are the links to
	// every peer worker hosting the downstream operator, for the close
	// cascade; done is nil when no downstream instance is local.
	opID      uint16
	gen       uint32
	remote    []*remoteDest
	doneLinks []*link
	// pend holds the partially filled outgoing batch per target
	// instance. A batch is flushed when it reaches Config.BatchSize,
	// when the sender goes idle or sleeps, when FlushInterval has
	// passed, and at exit — so low-rate streams keep per-record latency
	// and drains never strand records.
	pend []*batch
}

// localAcc is an instance's goroutine-local instrumentation scratch.
// The worker accumulates here with no synchronization and merges into
// the shared acc (one mutex round-trip) only every accFlushInterval,
// when idle, and at exit — never per record.
type localAcc struct {
	dur               metrics.Durations
	processed, pushed int64
	downWait          []time.Duration // send-blocked time per out edge
	lats              []metrics.LatencySample
}

// accFlushInterval bounds how stale the shared accumulator may be while
// a worker is busy: a window cut misses at most this much trailing
// activity (carried into the next window), a fraction of a percent of
// any realistic policy interval.
const accFlushInterval = 5 * time.Millisecond

// acc is the shared accumulator one instance exposes to Collect between
// window cuts. Workers merge their local scratch in batches; Collect
// takes and resets it.
type acc struct {
	mu                sync.Mutex
	dur               metrics.Durations
	processed, pushed int64
	// downWait is the time this instance spent blocked pushing into
	// each downstream operator (indexed like the instance's outs) —
	// the receiver-side backpressure signal, kept separate from the
	// sender's own WaitingOutput window metric.
	downWait []time.Duration
	lats     []metrics.LatencySample
}

type accSnapshot struct {
	dur               metrics.Durations
	processed, pushed int64
	downWait          []time.Duration
	lats              []metrics.LatencySample
}

func (a *acc) take() accSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := accSnapshot{dur: a.dur, processed: a.processed, pushed: a.pushed, downWait: a.downWait, lats: a.lats}
	a.dur = metrics.Durations{}
	a.processed, a.pushed = 0, 0
	a.downWait = nil
	a.lats = nil
	return out
}

// merge folds the worker's local scratch into the shared accumulator
// and resets the scratch (retaining its backing storage).
func (a *acc) merge(l *localAcc) {
	a.mu.Lock()
	a.dur.Deserialization += l.dur.Deserialization
	a.dur.Processing += l.dur.Processing
	a.dur.Serialization += l.dur.Serialization
	a.dur.WaitingInput += l.dur.WaitingInput
	a.dur.WaitingOutput += l.dur.WaitingOutput
	a.processed += l.processed
	a.pushed += l.pushed
	for i, w := range l.downWait {
		if w != 0 {
			if a.downWait == nil {
				a.downWait = make([]time.Duration, len(l.downWait))
			}
			a.downWait[i] += w
		}
	}
	a.lats = append(a.lats, l.lats...)
	a.mu.Unlock()
	l.dur = metrics.Durations{}
	l.processed, l.pushed = 0, 0
	for i := range l.downWait {
		l.downWait[i] = 0
	}
	l.lats = l.lats[:0]
}

// instance is one parallel instance of an operator: one goroutine, one
// bounded input channel (non-sources), one instrumentation
// accumulator.
type instance struct {
	job  *Job
	op   string
	idx  int
	sink bool

	// sources
	src  *SourceSpec
	seq  *int64 // shared per-source sequence counter (this process)
	nsrc int    // source parallelism, for pacing shares
	// Distributed sequence striping: each worker process owns every
	// seqBlock-sized block b of the global sequence space with
	// b % seqNW == seqWorker, so the union of all workers' emissions is
	// exactly [0, Limit) with no coordination on the hot path. The
	// local counter (seq) counts the process's own records; seqAt maps
	// it to the global sequence. Single-process jobs have seqNW == 1
	// and the mapping is the identity.
	seqNW     int
	seqWorker int
	seqBlock  int64
	srcLimit  int64 // this process's share of src.Limit (0 = unbounded)
	// startGate, when non-nil, holds the source until the coordinator
	// releases the deployment (two-phase deploy: every worker installs
	// its receive table before any source emits).
	startGate <-chan struct{}

	// operators
	spec  *OperatorSpec
	in    chan *batch
	state map[string]any // keyed per-key state (this instance's share)

	outs []outEdge

	// worker-goroutine scratch, touched only by the worker goroutine
	local  localAcc
	vals   []any     // decoded-values scratch, one batch's worth
	curSrc time.Time // src stamp for emissions of the current record
	nrec   int64
	// latHist is the exporter's record-latency histogram (sinks only,
	// resolved at deploy so the hot path never touches the registry);
	// nil when telemetry is off.
	latHist      *obs.Histogram
	owed         time.Duration // work-pacing credit, see work()
	lastAccFlush time.Time
	lastPend     time.Time
	// first points at the deployment's first-record resolver until this
	// instance has processed a batch; cleared after the first note, so
	// steady state pays one nil check per batch. Ends a rescale trace's
	// downtime window.
	first *firstRecord

	acc acc
}

// noteFirstRecord resolves the deployment's first-record instant (once;
// later calls find the pointer already cleared).
func (in *instance) noteFirstRecord(t time.Time) {
	if in.first != nil {
		in.first.note(t)
		in.first = nil
	}
}

// work applies the spec's per-record Cost. A naive time.Sleep(cost)
// overshoots by the timer granularity (hundreds of µs to ~1 ms for
// sub-ms sleeps), which would silently halve an instance's measured
// capacity. Instead the cost is banked: the instance sleeps only once
// enough is owed to dwarf the granularity, and the actual measured
// sleep time — overshoot included — is debited, so the window
// aggregate of useful time converges to records × cost exactly. Idle
// time never banks credit: owed is untouched while blocked on input.
func (in *instance) work(cost time.Duration) {
	in.owed += cost
	const minSleep = 2 * time.Millisecond
	if in.owed < minSleep {
		return
	}
	t0 := time.Now()
	time.Sleep(in.owed)
	in.owed -= time.Since(t0)
	// One overshoot of credit is self-correction; more would mean
	// free capacity after an anomalous stall.
	if in.owed < -minSleep {
		in.owed = -minSleep
	}
}

// exit runs the instance's side of the close cascade: one Done per
// downstream operator, matching the Add of its upstream-instance
// count.
func (in *instance) exit() {
	for i := range in.outs {
		oe := &in.outs[i]
		if oe.done != nil {
			oe.done.Done()
		}
		// Cross-process close cascade: every peer worker hosting the
		// downstream operator counts this instance in its WaitGroup
		// too. Links are FIFO, so the DONE frame cannot overtake the
		// flushes drainExit just wrote.
		for _, l := range oe.doneLinks {
			l.sendDone(doneMsg{gen: oe.gen, op: oe.opID})
		}
	}
}

// drainExit is every worker loop's deferred epilogue: push out partial
// batches (exactly-once across rescales requires the drain cascade to
// flush batches in flight before the snapshot) and the remaining local
// instrumentation, then signal the close cascade.
func (in *instance) drainExit() {
	in.flushPending(flushExit)
	in.acc.merge(&in.local)
	in.exit()
}

// emit appends one logical record to the pending batch of every
// downstream operator. The hot path takes no clock readings and no
// locks; serialization and send-blocked time are measured per batch at
// flush time. It is handed to user Process functions as the Emit
// callback.
func (in *instance) emit(key string, value any) {
	for i := range in.outs {
		oe := &in.outs[i]
		var target int
		switch {
		case oe.keyed:
			target = oe.router.owner(key)
		default:
			target = oe.rr % len(oe.chans)
			oe.rr++
		}
		b := oe.pend[target]
		if b == nil {
			b = in.job.getBatch()
			oe.pend[target] = b
		}
		b.msgs = append(b.msgs, message{key: key, val: value, src: in.curSrc})
		if len(b.msgs) >= in.job.cfg.BatchSize {
			in.flushOne(oe, i, target, flushSize)
		}
	}
	in.local.pushed++
}

// flushOne encodes and sends one pending batch, taking the
// serialization and waiting-for-output clock splits once for the whole
// batch (attributed proportionally — the records of a batch share its
// measured encode and send time uniformly).
func (in *instance) flushOne(oe *outEdge, edge, target int, reason flushReason) {
	b := oe.pend[target]
	if b == nil || len(b.msgs) == 0 {
		return
	}
	oe.pend[target] = nil
	if oe.remote != nil && oe.remote[target] != nil {
		in.flushRemote(oe, edge, target, b, reason)
		return
	}
	n := len(b.msgs) // the batch belongs to the receiver after the send
	t0 := time.Now()
	t1 := t0
	if oe.codec != nil {
		if oe.appendEnc != nil {
			for k := range b.msgs {
				m := &b.msgs[k]
				off := int32(len(b.buf))
				b.buf = oe.appendEnc.AppendEncode(b.buf, m.val)
				m.encOff, m.encLen = off, int32(len(b.buf))-off
				m.val = nil
			}
		} else {
			for k := range b.msgs {
				m := &b.msgs[k]
				off := int32(len(b.buf))
				b.buf = append(b.buf, oe.codec.Encode(m.val)...)
				m.encOff, m.encLen = off, int32(len(b.buf))-off
				m.val = nil
			}
		}
		t1 = time.Now()
		in.local.dur.Serialization += t1.Sub(t0)
	}
	oe.chans[target] <- b
	t2 := time.Now()
	blocked := t2.Sub(t1)
	in.local.dur.WaitingOutput += blocked
	in.local.downWait[edge] += blocked
	if o := in.job.obs; o != nil {
		o.flushed(reason, n, blocked)
	}
}

// flushRemote sends one pending batch to an instance hosted by another
// worker: acquire one flow-control credit (blocking here is the remote
// analogue of a full channel — it counts as waiting-for-output and
// feeds the receiver's backpressure signal), then encode the batch
// straight into the link's write buffer. The batch itself never leaves
// this process, so it recycles immediately.
func (in *instance) flushRemote(oe *outEdge, edge, target int, b *batch, reason flushReason) {
	rd := oe.remote[target]
	n := len(b.msgs)
	t0 := time.Now()
	ok := rd.acquire()
	t1 := time.Now()
	blocked := t1.Sub(t0)
	in.local.dur.WaitingOutput += blocked
	in.local.downWait[edge] += blocked
	if ok {
		rd.link.sendData(oe.gen, rd.opID, rd.inst, b, oe.appendEnc, oe.codec)
		in.local.dur.Serialization += time.Since(t1)
	}
	// A dead link (acquire false) drops the batch: the deployment is
	// failing and the coordinator will surface the link error.
	in.job.putBatch(b)
	if o := in.job.obs; o != nil {
		o.flushed(reason, n, blocked)
	}
}

// flushPending pushes out every non-empty pending batch.
func (in *instance) flushPending(reason flushReason) {
	for i := range in.outs {
		oe := &in.outs[i]
		for t := range oe.pend {
			if oe.pend[t] != nil {
				in.flushOne(oe, i, t, reason)
			}
		}
	}
}

// maybeFlushPending applies the time bound on partial batches: if
// FlushInterval has passed since the last deadline flush, everything
// pending goes out now. now is a clock reading the caller already took.
func (in *instance) maybeFlushPending(now time.Time) {
	if now.Sub(in.lastPend) >= in.job.cfg.FlushInterval {
		in.flushPending(flushDeadline)
		in.lastPend = now
	}
}

// maybeFlushAcc merges local instrumentation into the shared
// accumulator if it has been local for accFlushInterval.
func (in *instance) maybeFlushAcc(now time.Time) {
	if now.Sub(in.lastAccFlush) >= accFlushInterval {
		in.acc.merge(&in.local)
		in.lastAccFlush = now
	}
}

// idleFlush runs when the worker is about to block on input: partial
// batches and buffered instrumentation all go out, so an idle pipeline
// holds no records hostage and Collect sees fresh counters.
func (in *instance) idleFlush() {
	in.flushPending(flushIdle)
	in.acc.merge(&in.local)
}

// nextBatch returns the next input batch, flushing pending output and
// local instrumentation before blocking.
func (in *instance) nextBatch() (*batch, bool) {
	select {
	case b, ok := <-in.in:
		return b, ok
	default:
	}
	in.idleFlush()
	b, ok := <-in.in
	return b, ok
}

// decodeBatch runs the batch's deserialization phase: every record is
// decoded up front (one clock pair for the whole batch), so the process
// phase that follows touches no codec. Returns the decoded values (the
// instance's reused scratch) or nil when the operator has no codec, and
// the end-of-phase clock reading.
func (in *instance) decodeBatch(b *batch, t1 time.Time) ([]any, time.Time) {
	codec := in.spec.Codec
	if codec == nil {
		return nil, t1
	}
	if cap(in.vals) < len(b.msgs) {
		in.vals = make([]any, 0, cap(b.msgs))
	}
	vals := in.vals[:0]
	for i := range b.msgs {
		m := &b.msgs[i]
		vals = append(vals, codec.Decode(b.buf[m.encOff:m.encOff+m.encLen]))
	}
	t2 := time.Now()
	in.local.dur.Deserialization += t2.Sub(t1)
	return vals, t2
}

// sampleLatencies records the sink's strided source-to-sink latency
// samples for one processed batch, all against the batch-end clock.
func (in *instance) sampleLatencies(b *batch, t3 time.Time, every int64) {
	for i := range b.msgs {
		m := &b.msgs[i]
		if m.src.IsZero() {
			continue
		}
		if in.nrec++; in.nrec%every == 0 {
			in.local.lats = append(in.local.lats,
				metrics.LatencySample{Latency: t3.Sub(m.src).Seconds(), Weight: float64(every)})
		}
		// The exporter's histogram samples on its own fixed stride,
		// independent of the policy's LatencySampleEvery (which jobs
		// tune, or disable, without losing the exported signal). One
		// lock-free Observe per 1024 records keeps the hot path
		// allocation-free and under a nanosecond of amortized cost.
		if in.latHist != nil && in.nrec&(latencySampleStride-1) == 0 {
			in.latHist.Observe(t3.Sub(m.src).Seconds())
		}
	}
}

// runOperator is the worker loop of a non-source instance: block on
// input (waiting), decode the batch (deserialization), run the user
// function plus Cost over every record (processing; emission time
// inside is re-attributed to serialization/waiting-for-output at flush
// granularity), account the batch. All clock splits are per batch, not
// per record.
func (in *instance) runOperator() {
	defer in.drainExit()
	spec := in.spec
	every := int64(in.job.cfg.LatencySampleEvery)
	// Bind the emit callback once: a fresh method value per record
	// would cost one heap allocation on the exchange hot path.
	emit := Emit(in.emit)
	for {
		t0 := time.Now()
		b, ok := in.nextBatch()
		t1 := time.Now()
		in.local.dur.WaitingInput += t1.Sub(t0)
		if !ok {
			return
		}
		vals, t1 := in.decodeBatch(b, t1)
		emitted0 := in.local.dur.Serialization + in.local.dur.WaitingOutput
		for i := range b.msgs {
			m := &b.msgs[i]
			v := m.val
			if vals != nil {
				v = vals[i]
			}
			in.curSrc = m.src
			if spec.Keyed {
				in.state[m.key] = spec.Process(in.state[m.key], m.key, v, emit)
			} else {
				spec.Process(nil, m.key, v, emit)
			}
			if spec.Cost > 0 {
				in.work(spec.Cost)
			}
		}
		t3 := time.Now()
		proc := t3.Sub(t1) - (in.local.dur.Serialization + in.local.dur.WaitingOutput - emitted0)
		if proc < 0 {
			proc = 0
		}
		in.local.dur.Processing += proc
		in.local.processed += int64(len(b.msgs))
		in.noteFirstRecord(t3)
		if in.sink {
			in.sampleLatencies(b, t3, every)
		}
		in.job.putBatch(b)
		in.maybeFlushAcc(t3)
		in.maybeFlushPending(t3)
	}
}

// runSource is the worker loop of a source instance: pace to the
// target rate (the pause is waiting-for-input — the instance is
// waiting on the external world), generate a burst of records
// (processing), emit them (serialization + waiting-for-output at flush
// time). Pacing is per burst — one timer and one clock pair cover
// burst-many records — with the burst sized so a full FlushInterval of
// records fits in one batch; at low rates the burst degenerates to one
// record and pacing is per record as before. A source that falls
// behind schedule — blocked on a full downstream queue — suppresses
// the missed schedule rather than bursting to catch up: the no-backlog
// spout of §5.2, whose achieved rate visibly drops under backpressure.
// seqAt maps this process's c-th source record to its global sequence
// number under block striping (identity when seqNW <= 1).
func (in *instance) seqAt(c int64) int64 {
	if in.seqNW <= 1 {
		return c
	}
	blk, off := c/in.seqBlock, c%in.seqBlock
	return (blk*int64(in.seqNW)+int64(in.seqWorker))*in.seqBlock + off
}

// hostingWorkers returns the sorted distinct workers appearing in one
// operator's instance→worker assignment: the processes that host at
// least one instance, and so the stripe set for source sequences.
func hostingWorkers(assign []int) []int {
	seen := make(map[int]bool, len(assign))
	hosts := make([]int, 0, len(assign))
	for _, w := range assign {
		if !seen[w] {
			seen[w] = true
			hosts = append(hosts, w)
		}
	}
	sort.Ints(hosts)
	return hosts
}

// localSeqLimit returns how many of the first limit global sequence
// numbers fall in worker w's stripe (block striping, block size block).
func localSeqLimit(limit int64, w, nw int, block int64) int64 {
	if limit <= 0 || nw <= 1 {
		return limit
	}
	fullBlocks := limit / block
	rem := limit % block
	var mine int64
	if fullBlocks > int64(w) {
		mine = (fullBlocks - int64(w) + int64(nw) - 1) / int64(nw) * block
	}
	if fullBlocks%int64(nw) == int64(w) {
		mine += rem
	}
	return mine
}

func (in *instance) runSource(stop <-chan struct{}) {
	defer in.drainExit()
	if in.startGate != nil {
		select {
		case <-in.startGate:
		case <-stop:
			return
		}
	}
	src := in.src
	if src.Limit > 0 && in.srcLimit == 0 {
		return // bounded source whose stripe holds none of the first Limit seqs
	}
	cfg := &in.job.cfg
	next := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		rate := src.Rate(in.job.Now())
		if rate*3600 < float64(in.nsrc) {
			// Idle (or effectively idle — below one record per hour
			// per instance): poll for a usable rate. Routing tiny
			// rates here keeps the period math far from Duration
			// overflow and lets a later rate increase take effect
			// within milliseconds instead of one enormous period.
			in.idleFlush()
			t0 := time.Now()
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			in.local.dur.WaitingInput += time.Since(t0)
			next = time.Now()
			continue
		}
		burst := int64(rate * cfg.FlushInterval.Seconds() / float64(in.nsrc))
		if burst < 1 {
			burst = 1
		}
		if burst > int64(cfg.BatchSize) {
			burst = int64(cfg.BatchSize)
		}
		next = next.Add(time.Duration(float64(burst) * float64(in.nsrc) / rate * float64(time.Second)))
		now := time.Now()
		var waitIn time.Duration
		if d := next.Sub(now); d > 0 {
			// Nothing may sit in a partial batch across a pacing
			// sleep: flush first, then wait.
			in.flushPending(flushPacing)
			in.maybeFlushAcc(now)
			timer := time.NewTimer(d)
			select {
			case <-stop:
				timer.Stop()
				return
			case <-timer.C:
			}
			waitIn = time.Since(now)
		} else {
			next = now // behind schedule: suppress, don't burst
		}
		// The burst's sequence range is reserved only once it is
		// definitely being emitted (after the stop checks), so every
		// reserved seq is processed exactly once across rescales —
		// disjoint ranges across instances, and a reserved range is
		// always emitted in full before this instance exits.
		start := atomic.AddInt64(in.seq, burst) - burst
		n := burst
		if in.srcLimit > 0 {
			if start >= in.srcLimit {
				return
			}
			if start+n > in.srcLimit {
				n = in.srcLimit - start
			}
		}
		t1 := time.Now()
		in.curSrc = t1
		emitted0 := in.local.dur.Serialization + in.local.dur.WaitingOutput
		for s := start; s < start+n; s++ {
			key, val := src.Next(in.seqAt(s))
			if src.Cost > 0 {
				in.work(src.Cost)
			}
			in.emit(key, val)
		}
		t2 := time.Now()
		proc := t2.Sub(t1) - (in.local.dur.Serialization + in.local.dur.WaitingOutput - emitted0)
		if proc < 0 {
			proc = 0
		}
		in.local.dur.Processing += proc
		in.local.dur.WaitingInput += waitIn
		in.local.processed += n
		in.noteFirstRecord(t2)
		in.maybeFlushAcc(t2)
		if in.srcLimit > 0 && start+n >= in.srcLimit {
			return
		}
	}
}
