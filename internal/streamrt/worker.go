package streamrt

import (
	"sync"
	"sync/atomic"
	"time"

	"ds2/internal/metrics"
)

// message is one record on the wire between instances.
type message struct {
	key string
	val any       // direct value (no codec on the receiving operator)
	enc []byte    // encoded value (codec set on the receiving operator)
	src time.Time // source emission instant, for sink latency samples
}

// outEdge is one instance's view of a downstream operator: where to
// send, how to partition, and how to signal exit for the close
// cascade. Each instance owns its copy (rr is the per-edge round-robin
// cursor for non-keyed exchanges and must not be shared).
type outEdge struct {
	op    string
	keyed bool
	codec Codec
	chans []chan message
	done  *sync.WaitGroup
	rr    int
}

// acc accumulates one instance's instrumentation between window cuts.
// The worker goroutine adds once per record; Collect takes and resets
// it.
type acc struct {
	mu                sync.Mutex
	dur               metrics.Durations
	processed, pushed int64
	// downWait is the time this instance spent blocked pushing into
	// each downstream operator (indexed like the instance's outs) —
	// the receiver-side backpressure signal, kept separate from the
	// sender's own WaitingOutput window metric.
	downWait []time.Duration
	lats     []metrics.LatencySample
}

type accSnapshot struct {
	dur               metrics.Durations
	processed, pushed int64
	downWait          []time.Duration
	lats              []metrics.LatencySample
}

func (a *acc) take() accSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := accSnapshot{dur: a.dur, processed: a.processed, pushed: a.pushed, downWait: a.downWait, lats: a.lats}
	a.dur = metrics.Durations{}
	a.processed, a.pushed = 0, 0
	a.downWait = nil
	a.lats = nil
	return out
}

func (a *acc) add(d metrics.Durations, processed, pushed int64, edgeWait []time.Duration, lat *metrics.LatencySample) {
	a.mu.Lock()
	a.dur.Deserialization += d.Deserialization
	a.dur.Processing += d.Processing
	a.dur.Serialization += d.Serialization
	a.dur.WaitingInput += d.WaitingInput
	a.dur.WaitingOutput += d.WaitingOutput
	a.processed += processed
	a.pushed += pushed
	if len(edgeWait) > 0 {
		if a.downWait == nil {
			a.downWait = make([]time.Duration, len(edgeWait))
		}
		for i, w := range edgeWait {
			a.downWait[i] += w
		}
	}
	if lat != nil {
		a.lats = append(a.lats, *lat)
	}
	a.mu.Unlock()
}

// instance is one parallel instance of an operator: one goroutine, one
// bounded input channel (non-sources), one instrumentation
// accumulator.
type instance struct {
	job  *Job
	op   string
	idx  int
	sink bool

	// sources
	src  *SourceSpec
	seq  *int64 // shared per-source sequence counter
	nsrc int    // source parallelism, for pacing shares

	// operators
	spec  *OperatorSpec
	in    chan message
	state map[string]any // keyed per-key state (this instance's hash share)

	outs []outEdge

	// per-record scratch, touched only by the worker goroutine
	emitSer, emitWait time.Duration
	edgeWait          []time.Duration // send-blocked time per out edge
	emitPushed        int64
	curSrc            time.Time
	nrec              int64
	owed              time.Duration // work-pacing credit, see work()

	acc acc
}

// resetEmitScratch clears the per-record emission counters.
func (in *instance) resetEmitScratch() {
	in.emitSer, in.emitWait, in.emitPushed = 0, 0, 0
	for i := range in.edgeWait {
		in.edgeWait[i] = 0
	}
}

// work applies the spec's per-record Cost. A naive time.Sleep(cost)
// overshoots by the timer granularity (hundreds of µs to ~1 ms for
// sub-ms sleeps), which would silently halve an instance's measured
// capacity. Instead the cost is banked: the instance sleeps only once
// enough is owed to dwarf the granularity, and the actual measured
// sleep time — overshoot included — is debited, so the window
// aggregate of useful time converges to records × cost exactly. Idle
// time never banks credit: owed is untouched while blocked on input.
func (in *instance) work(cost time.Duration) {
	in.owed += cost
	const minSleep = 2 * time.Millisecond
	if in.owed < minSleep {
		return
	}
	t0 := time.Now()
	time.Sleep(in.owed)
	in.owed -= time.Since(t0)
	// One overshoot of credit is self-correction; more would mean
	// free capacity after an anomalous stall.
	if in.owed < -minSleep {
		in.owed = -minSleep
	}
}

// exit runs the instance's side of the close cascade: one Done per
// downstream operator, matching the Add of its upstream-instance
// count.
func (in *instance) exit() {
	for i := range in.outs {
		in.outs[i].done.Done()
	}
}

// emit sends one logical record to every downstream operator,
// measuring encoding as serialization time and the (possibly blocking)
// channel send as waiting-for-output time. It is handed to user
// Process functions as the Emit callback; the time it spends is
// subtracted from the surrounding processing measurement.
func (in *instance) emit(key string, value any) {
	mark := time.Now()
	for i := range in.outs {
		oe := &in.outs[i]
		m := message{key: key, src: in.curSrc}
		if oe.codec != nil {
			m.enc = oe.codec.Encode(value)
		} else {
			m.val = value
		}
		enc := time.Now()
		in.emitSer += enc.Sub(mark)
		var target int
		if oe.keyed {
			target = int(hashKey(key) % uint64(len(oe.chans)))
		} else {
			target = oe.rr % len(oe.chans)
			oe.rr++
		}
		oe.chans[target] <- m
		mark = time.Now()
		blocked := mark.Sub(enc)
		in.emitWait += blocked
		in.edgeWait[i] += blocked
	}
	in.emitPushed++
}

// runOperator is the worker loop of a non-source instance: block on
// input (waiting), decode (deserialization), run the user function
// plus Cost (processing; emission time inside is re-attributed to
// serialization/waiting-for-output), account the record.
func (in *instance) runOperator() {
	defer in.exit()
	spec := in.spec
	every := int64(in.job.cfg.LatencySampleEvery)
	// Bind the emit callback once: a fresh method value per record
	// would cost one heap allocation on the exchange hot path.
	emit := Emit(in.emit)
	for {
		t0 := time.Now()
		m, ok := <-in.in
		t1 := time.Now()
		waitIn := t1.Sub(t0)
		if !ok {
			in.acc.add(metrics.Durations{WaitingInput: waitIn}, 0, 0, nil, nil)
			return
		}
		val := m.val
		var deser time.Duration
		if spec.Codec != nil {
			val = spec.Codec.Decode(m.enc)
			t2 := time.Now()
			deser = t2.Sub(t1)
			t1 = t2
		}
		in.resetEmitScratch()
		in.curSrc = m.src
		if spec.Keyed {
			in.state[m.key] = spec.Process(in.state[m.key], m.key, val, emit)
		} else {
			spec.Process(nil, m.key, val, emit)
		}
		if spec.Cost > 0 {
			in.work(spec.Cost)
		}
		t3 := time.Now()
		proc := t3.Sub(t1) - in.emitSer - in.emitWait
		if proc < 0 {
			proc = 0
		}
		var lat *metrics.LatencySample
		if in.sink && !m.src.IsZero() {
			if in.nrec++; in.nrec%every == 0 {
				lat = &metrics.LatencySample{Latency: t3.Sub(m.src).Seconds(), Weight: float64(every)}
			}
		}
		in.acc.add(metrics.Durations{
			Deserialization: deser,
			Processing:      proc,
			Serialization:   in.emitSer,
			WaitingInput:    waitIn,
			WaitingOutput:   in.emitWait,
		}, 1, in.emitPushed, in.edgeWait, lat)
	}
}

// runSource is the worker loop of a source instance: pace to the
// target rate (the pause is waiting-for-input — the instance is
// waiting on the external world), generate the record (processing),
// emit it (serialization + waiting-for-output). A source that falls
// behind schedule — blocked on a full downstream queue — suppresses
// the missed records rather than bursting to catch up: the no-backlog
// spout of §5.2, whose achieved rate visibly drops under backpressure.
func (in *instance) runSource(stop <-chan struct{}) {
	defer in.exit()
	src := in.src
	next := time.Now()
	for {
		select {
		case <-stop:
			return
		default:
		}
		rate := src.Rate(in.job.Now())
		if rate*3600 < float64(in.nsrc) {
			// Idle (or effectively idle — below one record per hour
			// per instance): poll for a usable rate. Routing tiny
			// rates here keeps the period math far from Duration
			// overflow and lets a later rate increase take effect
			// within milliseconds instead of one enormous period.
			t0 := time.Now()
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			in.acc.add(metrics.Durations{WaitingInput: time.Since(t0)}, 0, 0, nil, nil)
			next = time.Now()
			continue
		}
		next = next.Add(time.Duration(float64(in.nsrc) / rate * float64(time.Second)))
		now := time.Now()
		var waitIn time.Duration
		if d := next.Sub(now); d > 0 {
			timer := time.NewTimer(d)
			select {
			case <-stop:
				timer.Stop()
				return
			case <-timer.C:
			}
			waitIn = time.Since(now)
		} else {
			next = now // behind schedule: suppress, don't burst
		}
		// The sequence number is allocated only once this record is
		// definitely being emitted (after the stop checks), so every
		// allocated seq is processed exactly once across rescales.
		seq := atomic.AddInt64(in.seq, 1) - 1
		if src.Limit > 0 && seq >= src.Limit {
			return
		}
		t1 := time.Now()
		key, val := src.Next(seq)
		if src.Cost > 0 {
			in.work(src.Cost)
		}
		in.resetEmitScratch()
		in.curSrc = time.Now()
		proc := in.curSrc.Sub(t1)
		in.emit(key, val)
		in.acc.add(metrics.Durations{
			Processing:    proc,
			Serialization: in.emitSer,
			WaitingInput:  waitIn,
			WaitingOutput: in.emitWait,
		}, 1, in.emitPushed, in.edgeWait, nil)
	}
}
