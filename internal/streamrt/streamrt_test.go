package streamrt

import (
	"fmt"
	"math"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/metrics"
)

// testPipeline builds source -> split -> count: the source emits
// "k<seq%keys>" keys at rate r, split fans every record out `fan`
// times, count accumulates per-key int counts.
func testPipeline(t *testing.T, rate float64, limit int64, keys, fan int, splitCost, countCost time.Duration) *Pipeline {
	t.Helper()
	p, err := NewPipeline().
		AddSource("src", SourceSpec{
			Rate:  func(float64) float64 { return rate },
			Next:  func(seq int64) (string, any) { return "", fmt.Sprintf("k%d", seq%int64(keys)) },
			Limit: limit,
		}).
		AddOperator("split", OperatorSpec{
			Process: func(_ any, _ string, v any, emit Emit) any {
				for i := 0; i < fan; i++ {
					emit(v.(string), v)
				}
				return nil
			},
			Cost:  splitCost,
			Codec: StringCodec{},
		}).
		AddOperator("count", OperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, _ any, _ Emit) any {
				c, _ := state.(int)
				return c + 1
			},
			Cost:  countCost,
			Codec: StringCodec{},
		}).
		AddEdge("src", "split").
		AddEdge("split", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineValidation(t *testing.T) {
	rate := func(float64) float64 { return 1 }
	next := func(seq int64) (string, any) { return "", seq }
	proc := func(_ any, _ string, _ any, _ Emit) any { return nil }

	cases := map[string]*Builder{
		"source missing Rate": NewPipeline().
			AddSource("s", SourceSpec{Next: next}).
			AddOperator("o", OperatorSpec{Process: proc}).
			AddEdge("s", "o"),
		"source missing Next": NewPipeline().
			AddSource("s", SourceSpec{Rate: rate}).
			AddOperator("o", OperatorSpec{Process: proc}).
			AddEdge("s", "o"),
		"operator missing Process": NewPipeline().
			AddSource("s", SourceSpec{Rate: rate, Next: next}).
			AddOperator("o", OperatorSpec{}).
			AddEdge("s", "o"),
		"operator with no inputs declared via AddOperator": NewPipeline().
			AddSource("s", SourceSpec{Rate: rate, Next: next}).
			AddOperator("o", OperatorSpec{Process: proc}).
			AddOperator("dangling-root", OperatorSpec{Process: proc}).
			AddEdge("s", "o").
			AddEdge("dangling-root", "o"),
		"source with upstream edges": NewPipeline().
			AddSource("s", SourceSpec{Rate: rate, Next: next}).
			AddSource("s2", SourceSpec{Rate: rate, Next: next}).
			AddOperator("o", OperatorSpec{Process: proc}).
			AddEdge("s", "s2").
			AddEdge("s2", "o"),
		"negative cost": NewPipeline().
			AddSource("s", SourceSpec{Rate: rate, Next: next, Cost: -1}).
			AddOperator("o", OperatorSpec{Process: proc}).
			AddEdge("s", "o"),
		"cycle": NewPipeline().
			AddSource("s", SourceSpec{Rate: rate, Next: next}).
			AddOperator("a", OperatorSpec{Process: proc}).
			AddOperator("b", OperatorSpec{Process: proc}).
			AddEdge("s", "a").AddEdge("a", "b").AddEdge("b", "a"),
	}
	for name, b := range cases {
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected Build error", name)
		}
	}
}

func TestNewJobValidatesParallelism(t *testing.T) {
	p := testPipeline(t, 100, 10, 4, 1, 0, 0)
	if _, err := NewJob(p, dataflow.Parallelism{"src": 1}, Config{}); err == nil {
		t.Fatal("expected error for incomplete parallelism")
	}
	if _, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 0, "count": 1}, Config{}); err == nil {
		t.Fatal("expected error for zero parallelism")
	}
}

// collectCounts folds a Stop result's count states into map[key]int.
func collectCounts(t *testing.T, states map[string]map[string]any, op string) map[string]int {
	t.Helper()
	out := make(map[string]int)
	for k, v := range states[op] {
		c, ok := v.(int)
		if !ok {
			t.Fatalf("state for %q is %T, want int", k, v)
		}
		out[k] = c
	}
	return out
}

func TestBoundedJobDrainsExactly(t *testing.T) {
	const limit, keys, fan = 600, 7, 3
	p := testPipeline(t, 5000, limit, keys, fan, 0, 0)
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 2, "count": 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	counts := collectCounts(t, j.Stop(), "count")
	total := 0
	for k, c := range counts {
		total += c
		want := fan * (limit/keys + boolInt(int64(keyIndex(k)) < limit%keys))
		if c != want {
			t.Errorf("count[%s] = %d, want %d", k, c, want)
		}
	}
	if total != limit*fan {
		t.Fatalf("total = %d, want %d", total, limit*fan)
	}
}

func keyIndex(k string) int {
	var i int
	fmt.Sscanf(k, "k%d", &i)
	return i
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestRescalePreservesKeyedCountsExactly(t *testing.T) {
	// The snapshot/repartition correctness pin: a bounded stream is
	// rescaled twice mid-flight (up, then down); since source sequence
	// numbers survive redeployments and the drain processes every
	// in-flight record, the final keyed counts must equal a clean
	// run's.
	const limit, keys, fan = 900, 11, 2
	p := testPipeline(t, 3000, limit, keys, fan, 100*time.Microsecond, 50*time.Microsecond)
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := j.Rescale(dataflow.Parallelism{"src": 1, "split": 3, "count": 4}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if err := j.Rescale(dataflow.Parallelism{"src": 1, "split": 2, "count": 2}); err != nil {
		t.Fatal(err)
	}
	if got := j.Rescales(); got != 2 {
		t.Fatalf("rescales = %d, want 2", got)
	}
	j.Wait()
	counts := collectCounts(t, j.Stop(), "count")
	total := 0
	for k, c := range counts {
		total += c
		want := fan * (limit/keys + boolInt(int64(keyIndex(k)) < limit%keys))
		if c != want {
			t.Errorf("count[%s] = %d, want %d", k, c, want)
		}
	}
	if total != limit*fan {
		t.Fatalf("total = %d, want %d", total, limit*fan)
	}
}

func TestRescaleAfterStop(t *testing.T) {
	p := testPipeline(t, 100, 10, 4, 1, 0, 0)
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Stop()
	if err := j.Rescale(dataflow.Parallelism{"src": 1, "split": 2, "count": 2}); err != ErrStopped {
		t.Fatalf("rescale after stop: %v, want ErrStopped", err)
	}
	if _, err := j.NextInterval(0.01); err != ErrStopped {
		t.Fatalf("next interval after stop: %v, want ErrStopped", err)
	}
	// Stop is idempotent.
	j.Stop()
}

func TestCollectWallClockWindows(t *testing.T) {
	// Run ~400 ms at 200 rec/s with a 2 ms splitter cost and check the
	// §3 instrumentation: windows validate, the splitter's true
	// processing rate reflects its capacity (1/cost = 500/s) rather
	// than its observed rate (200/s), and the source signals line up.
	const rate, cost = 200.0, 2 * time.Millisecond
	p := testPipeline(t, rate, 0, 5, 1, cost, 0)
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()

	iv, err := j.NextInterval(0.4)
	if err != nil {
		t.Fatal(err)
	}
	if iv.End-iv.Start < 0.4 {
		t.Fatalf("interval [%v, %v) shorter than requested", iv.Start, iv.End)
	}
	if len(iv.Windows) != 3 {
		t.Fatalf("got %d windows, want 3", len(iv.Windows))
	}
	for _, w := range iv.Windows {
		if err := w.Validate(); err != nil {
			t.Errorf("window %s invalid: %v", w.ID, err)
		}
	}
	if got := iv.TargetRates["src"]; got != rate {
		t.Errorf("target rate = %v, want %v", got, rate)
	}
	if got := iv.SourceObserved["src"]; math.Abs(got-rate) > rate*0.15 {
		t.Errorf("observed source rate = %v, want ~%v", got, rate)
	}
	snap, err := metrics.BuildSnapshot(iv.End, iv.Windows, iv.TargetRates)
	if err != nil {
		t.Fatal(err)
	}
	split := snap.Operators["split"]
	capacity := 1 / cost.Seconds()
	if split.TrueProcessing < capacity*0.7 || split.TrueProcessing > capacity*1.1 {
		t.Errorf("splitter true rate = %v, want ~%v (capacity, not the %v observed)",
			split.TrueProcessing, capacity, rate)
	}
	if split.ObservedProcessing > rate*1.2 {
		t.Errorf("splitter observed rate = %v, want <= ~%v", split.ObservedProcessing, rate)
	}
	// A second collect continues from the cut.
	iv2, err := j.NextInterval(0.1)
	if err != nil {
		t.Fatal(err)
	}
	if iv2.Start != iv.End {
		t.Errorf("second interval starts at %v, want %v", iv2.Start, iv.End)
	}
	if len(iv.Latencies) == 0 {
		t.Error("no sink latency samples collected")
	}
}

func TestRoundRobinRotatesPerEdge(t *testing.T) {
	// One source fans out to two non-keyed operators at parallelism 2
	// each. The round-robin cursor is per edge: with a shared cursor
	// it would advance once per edge per record and pin every record
	// of each edge to a single fixed instance, starving the other.
	const limit = 400
	proc := func(_ any, _ string, _ any, _ Emit) any { return nil }
	p, err := NewPipeline().
		AddSource("src", SourceSpec{
			Rate:  func(float64) float64 { return 1e9 },
			Next:  func(seq int64) (string, any) { return "", seq },
			Limit: limit,
		}).
		AddOperator("a", OperatorSpec{Process: proc}).
		AddOperator("b", OperatorSpec{Process: proc}).
		AddEdge("src", "a").
		AddEdge("src", "b").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "a": 2, "b": 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	iv, err := j.Collect()
	if err != nil {
		t.Fatal(err)
	}
	j.Stop()
	got := make(map[string]float64)
	for _, w := range iv.Windows {
		got[w.ID.String()] = w.Processed
	}
	for _, id := range []string{"a[0]", "a[1]", "b[0]", "b[1]"} {
		if got[id] != limit/2 {
			t.Errorf("%s processed %v records, want %d (per-edge round robin)", id, got[id], limit/2)
		}
	}
}

func TestBackpressureSignal(t *testing.T) {
	// Overload: 400 rec/s into a 5 ms/record splitter (capacity 200).
	// The congested *splitter* must be flagged backpressured — the
	// signal is attributed to the receiver whose full queue blocked
	// the source, matching the simulator's input-queue semantics, so a
	// Dhalion diagnoser scales the flagged operator — the source never
	// is, and the achieved rate must fall visibly below target (the
	// no-backlog spout).
	p := testPipeline(t, 400, 0, 5, 1, 5*time.Millisecond, 0)
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()
	// Let the bounded queue fill before observing.
	time.Sleep(200 * time.Millisecond)
	if _, err := j.Collect(); err != nil {
		t.Fatal(err)
	}
	iv, err := j.NextInterval(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if iv.SourceObserved["src"] > 300 {
		t.Errorf("observed %v rec/s under backpressure, want well below the 400 target", iv.SourceObserved["src"])
	}
	found := false
	for _, op := range iv.Backpressured {
		if op == "src" {
			t.Error("source flagged backpressured; the signal belongs to the congested receiver")
		}
		if op == "split" {
			found = true
		}
	}
	if !found {
		t.Errorf("congested splitter not flagged backpressured (flags: %v, fractions: %v)",
			iv.Backpressured, iv.BackpressureFraction)
	}
}
