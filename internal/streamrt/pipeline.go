package streamrt

import (
	"encoding/binary"
	"fmt"
	"time"

	"ds2/internal/dataflow"
)

// Emit pushes one record to every downstream operator. Keyed
// downstream operators receive it at the instance the deployment's
// router assigns the key; others at the next round-robin instance.
// Records travel the exchange in batches: an emitted record is
// delivered once its batch fills (Config.BatchSize), once
// Config.FlushInterval passes, or when the emitting instance idles,
// sleeps for pacing, or exits — whichever comes first.
type Emit func(key string, value any)

// Codec encodes record values for the exchange into an operator. When
// an operator declares one, upstream instances encode (measured as
// serialization time) and the operator's instances decode (measured as
// deserialization time) — the exchange genuinely moves bytes.
// Operators without a Codec receive values directly and report all
// useful time under processing, the fallback internal/metrics
// documents for integrations that cannot split the three activities.
type Codec interface {
	Encode(v any) []byte
	Decode(b []byte) any
}

// AppendEncoder is an optional Codec extension for the batched
// exchange: AppendEncode appends v's encoding to dst and returns the
// extended slice, so senders encode straight into the outgoing batch
// buffer with no per-record allocation (record framing is the batch
// header's job — the encoding itself needs no length prefix). A codec
// handing out pooled values may recycle v here: after AppendEncode (or
// Encode) returns, the runtime never touches the value again.
type AppendEncoder interface {
	AppendEncode(dst []byte, v any) []byte
}

// StateCodec encodes an operator's per-key state for the distributed
// runtime: rescale snapshots cross process boundaries as bytes, so
// every keyed operator of a distributed job must declare how its state
// values serialize. For windowed operators the codec covers the *pane
// aggregate* (the value Process returns); the surrounding WindowState
// bookkeeping is encoded by the runtime itself. Single-process jobs
// never touch it — their snapshots stay in memory.
type StateCodec interface {
	EncodeState(v any) []byte
	DecodeState(b []byte) any
}

// StringCodec passes string values through []byte — the cheapest real
// codec, enough to make the deserialization/serialization split
// observable.
type StringCodec struct{}

// Encode implements Codec.
func (StringCodec) Encode(v any) []byte { return []byte(v.(string)) }

// Decode implements Codec.
func (StringCodec) Decode(b []byte) any { return string(b) }

// AppendEncode implements AppendEncoder.
func (StringCodec) AppendEncode(dst []byte, v any) []byte { return append(dst, v.(string)...) }

// IntStateCodec serializes int keyed state (per-key counters, the most
// common sink state) as a varint — enough to make any counting job
// savepointable without writing a codec.
type IntStateCodec struct{}

// EncodeState implements StateCodec.
func (IntStateCodec) EncodeState(v any) []byte { return binary.AppendVarint(nil, int64(v.(int))) }

// DecodeState implements StateCodec.
func (IntStateCodec) DecodeState(b []byte) any {
	x, n := binary.Varint(b)
	if n <= 0 {
		panic(fmt.Sprintf("streamrt: corrupt int state (%d bytes)", len(b)))
	}
	return int(x)
}

// SourceSpec is one executable source: a deterministic record
// generator paced at a target rate.
type SourceSpec struct {
	// Rate is the target emission rate in records/s at job time t
	// seconds — the λsrc the policy reads. The source is a no-backlog
	// spout (§5.2): records suppressed while blocked on a full
	// downstream queue are never produced later, so the achieved rate
	// visibly drops below target under backpressure. Rate is called
	// concurrently by every source instance and by window collection,
	// so it must be safe for concurrent use, and it must not call
	// back into the Job API (source goroutines evaluate it while a
	// rescale holds the job lock waiting for them to drain — a
	// re-entrant call would deadlock the redeployment). Rates below
	// one record per hour per instance are treated as zero.
	Rate func(t float64) float64
	// Next produces the seq-th record. Sequence numbers are allocated
	// from a per-source counter that survives rescales, and every
	// allocated sequence is emitted exactly once, so a deterministic
	// Next makes end-to-end results replayable.
	Next func(seq int64) (key string, value any)
	// Limit stops the source after this many records (0 = unbounded);
	// an exhausted source drains the pipeline and every instance exits.
	Limit int64
	// Cost is per-record blocking work (a sleep), modeling a source
	// whose capacity is bounded by I/O rather than CPU.
	Cost time.Duration
}

// OperatorSpec is one executable non-source operator.
type OperatorSpec struct {
	// Keyed selects key partitioning of the operator's input (see
	// router.go) and enables per-key state: Process receives the
	// key's current state (nil on first sight) and returns the new
	// state, which Rescale snapshots and repartitions.
	Keyed bool
	// Process handles one record, emitting zero or more downstream
	// records. For stateless operators state is always nil and the
	// return value is ignored. For windowed operators (Window set) the
	// state argument is the current pane's aggregate — nil when the
	// record opens the pane — and the return value becomes the pane's
	// new aggregate; per-key state bookkeeping is the runtime's.
	Process func(state any, key string, value any, emit Emit) any
	// Cost is per-record blocking work (a sleep), making the
	// instance's capacity 1/Cost records per second of useful time.
	Cost time.Duration
	// Codec, when set, makes the exchange into this operator pass
	// encoded bytes (see Codec).
	Codec Codec
	// Window, when set, makes this keyed operator windowed: records
	// accumulate into per-key processing-time panes and due windows
	// fire on the worker loop (see WindowSpec). Window state lives
	// inside the ordinary keyed state, so it is snapshotted and
	// repartitioned across rescales exactly like keyed counters.
	Window *WindowSpec
	// State serializes this operator's per-key state for distributed
	// deployments (see StateCodec). Required for keyed operators of a
	// distributed job; ignored — never called — in-process.
	State StateCodec
}

// WindowSpec configures a windowed keyed operator. Windows are
// processing-time: a record joins the pane covering the job time of
// its arrival at the operator (pane length = Slide), and the window
// ending at a pane fires once that pane's close instant has passed —
// checked after every record and on an idle tick, so firing rides the
// existing worker loop. Tumbling windows are the Slide == Size (or
// Slide == 0) case; sliding windows fire every Slide over the last
// Size of panes, combined with Combine.
type WindowSpec struct {
	// Size is the window length. It must be a positive multiple of
	// Slide.
	Size time.Duration
	// Slide is the firing period (and pane length). Zero selects
	// tumbling (Slide = Size).
	Slide time.Duration
	// Fire emits one closed window's result downstream. The aggregate
	// is the pane aggregate (tumbling) or the Combine-fold of the
	// window's panes in pane order (sliding). Empty windows do not
	// fire.
	Fire func(key string, aggregate any, emit Emit)
	// Combine folds two pane aggregates (earlier, later) into one;
	// required when Slide < Size, unused for tumbling windows.
	Combine func(earlier, later any) any
}

// slide returns the normalized firing period.
func (w *WindowSpec) slide() time.Duration {
	if w.Slide <= 0 {
		return w.Size
	}
	return w.Slide
}

// panes returns how many panes one window spans.
func (w *WindowSpec) panes() int64 { return int64(w.Size / w.slide()) }

// Pipeline is a frozen executable dataflow: the logical graph plus the
// specs of every vertex.
type Pipeline struct {
	graph   *dataflow.Graph
	sources map[string]*SourceSpec
	ops     map[string]*OperatorSpec
}

// Graph returns the logical dataflow graph.
func (p *Pipeline) Graph() *dataflow.Graph { return p.graph }

// Builder accumulates sources, operators and edges before validation —
// the NewGraph/AddNode/AddEdge/Compile builder shape.
type Builder struct {
	gb      *dataflow.Builder
	sources map[string]*SourceSpec
	ops     map[string]*OperatorSpec
	err     error
}

// NewPipeline returns an empty pipeline builder.
func NewPipeline() *Builder {
	return &Builder{
		gb:      dataflow.NewBuilder(),
		sources: make(map[string]*SourceSpec),
		ops:     make(map[string]*OperatorSpec),
	}
}

func (b *Builder) fail(err error) *Builder {
	if b.err == nil {
		b.err = err
	}
	return b
}

// syncGraphErr pulls a structural error out of the wrapped graph
// builder the moment it happens. Without this, a duplicate-name or
// unknown-edge error (which names the offending node/edge) would stay
// buried inside gb until Build, and a later spec error recorded via
// fail would mask it — the reported failure would name the wrong node.
func (b *Builder) syncGraphErr() *Builder { return b.fail(b.gb.Err()) }

// AddSource registers an executable source.
func (b *Builder) AddSource(name string, spec SourceSpec) *Builder {
	if b.err != nil {
		return b
	}
	if spec.Rate == nil {
		return b.fail(fmt.Errorf("streamrt: source %q has no Rate", name))
	}
	if spec.Next == nil {
		return b.fail(fmt.Errorf("streamrt: source %q has no Next", name))
	}
	if spec.Cost < 0 || spec.Limit < 0 {
		return b.fail(fmt.Errorf("streamrt: source %q: negative cost or limit", name))
	}
	b.gb.AddOperator(name)
	b.sources[name] = &spec
	return b.syncGraphErr()
}

// AddOperator registers an executable operator.
func (b *Builder) AddOperator(name string, spec OperatorSpec) *Builder {
	if b.err != nil {
		return b
	}
	if spec.Process == nil {
		return b.fail(fmt.Errorf("streamrt: operator %q has no Process", name))
	}
	if spec.Cost < 0 {
		return b.fail(fmt.Errorf("streamrt: operator %q: negative cost", name))
	}
	if w := spec.Window; w != nil {
		if !spec.Keyed {
			return b.fail(fmt.Errorf("streamrt: operator %q: windowed operators must be keyed", name))
		}
		if w.Size <= 0 {
			return b.fail(fmt.Errorf("streamrt: operator %q: window size %v <= 0", name, w.Size))
		}
		if w.Slide < 0 || w.Slide > w.Size {
			return b.fail(fmt.Errorf("streamrt: operator %q: window slide %v outside (0, size=%v]", name, w.Slide, w.Size))
		}
		if w.Size%w.slide() != 0 {
			return b.fail(fmt.Errorf("streamrt: operator %q: window size %v is not a multiple of slide %v", name, w.Size, w.slide()))
		}
		if w.Fire == nil {
			return b.fail(fmt.Errorf("streamrt: operator %q: windowed operator has no Fire", name))
		}
		if w.slide() < w.Size && w.Combine == nil {
			return b.fail(fmt.Errorf("streamrt: operator %q: sliding window (slide %v < size %v) has no Combine", name, w.slide(), w.Size))
		}
	}
	b.gb.AddOperator(name)
	b.ops[name] = &spec
	return b.syncGraphErr()
}

// AddEdge registers a data dependency from -> to.
func (b *Builder) AddEdge(from, to string) *Builder {
	if b.err != nil {
		return b
	}
	b.gb.AddEdge(from, to)
	return b.syncGraphErr()
}

// Build validates the accumulated structure — the graph invariants via
// dataflow.Build plus spec/role consistency — and returns the frozen
// pipeline.
func (b *Builder) Build() (*Pipeline, error) {
	if b.err != nil {
		return nil, b.err
	}
	g, err := b.gb.Build()
	if err != nil {
		return nil, err
	}
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		_, isSrc := b.sources[op.Name]
		if op.Role == dataflow.RoleSource {
			if !isSrc {
				return nil, fmt.Errorf("streamrt: %q has no upstream edges but was added as an operator", op.Name)
			}
			continue
		}
		if isSrc {
			return nil, fmt.Errorf("streamrt: source %q has upstream edges", op.Name)
		}
		if _, ok := b.ops[op.Name]; !ok {
			return nil, fmt.Errorf("streamrt: internal error: operator %q has no spec", op.Name)
		}
	}
	return &Pipeline{graph: g, sources: b.sources, ops: b.ops}, nil
}
