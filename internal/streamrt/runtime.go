package streamrt

import (
	"errors"
	"sync"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
	"ds2/internal/service"
)

// Runtime adapts a live Job to both control surfaces:
//
//   - controlloop.Runtime, so the standard Controller drives the job
//     in-process — Advance paces on the wall clock (the job's real
//     time), Apply performs the savepoint-and-restore rescale
//     synchronously and discards the polluted partial window (settle
//     semantics, like the Flink integration of §4.1).
//   - service.AttachedEngine, so the same job registers with a ds2d
//     scaling service and is driven through the ingestion/poll/ack
//     API instead — indistinguishable from any other remote job.
type Runtime struct {
	job *Job
}

// NewRuntime wraps a running Job.
func NewRuntime(j *Job) *Runtime { return &Runtime{job: j} }

// Job exposes the wrapped job.
func (r *Runtime) Job() *Job { return r.job }

// Advance blocks until the job has run d more seconds of wall-clock
// time, then collects the interval's observation.
func (r *Runtime) Advance(d float64) (controlloop.Observation, error) {
	iv, err := r.job.NextInterval(d)
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return controlloop.Observation{}, controlloop.ErrStopped
		}
		return controlloop.Observation{}, err
	}
	return iv.Observation(), nil
}

// Apply deploys the action's configuration via Job.Rescale.
func (r *Runtime) Apply(act *core.Action) error {
	if err := r.job.Rescale(act.New); err != nil {
		if errors.Is(err, ErrStopped) {
			return controlloop.ErrStopped
		}
		return err
	}
	return nil
}

// Parallelism returns the deployed configuration.
func (r *Runtime) Parallelism() dataflow.Parallelism { return r.job.Parallelism() }

// NextReport implements service.AttachedEngine: one policy interval's
// instrumentation in the scaling service's wire format. A stopped job
// surfaces as controlloop.ErrStopped, which the attached driver treats
// as a clean end (it still fetches the service-side trace).
func (r *Runtime) NextReport(intervalSec float64) (service.Report, error) {
	iv, err := r.job.NextInterval(intervalSec)
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return service.Report{}, controlloop.ErrStopped
		}
		return service.Report{}, err
	}
	return iv.Report(), nil
}

// Rescale implements service.AttachedEngine: deploy and report what
// was actually deployed (always the target — the live runtime deploys
// exactly what it is asked). Like NextReport, a stopped job surfaces
// as controlloop.ErrStopped so the attached driver ends cleanly.
func (r *Runtime) Rescale(p dataflow.Parallelism) (dataflow.Parallelism, error) {
	if err := r.job.Rescale(p); err != nil {
		if errors.Is(err, ErrStopped) {
			return nil, controlloop.ErrStopped
		}
		return nil, err
	}
	return r.job.Parallelism(), nil
}

// Attach registers the job with a ds2d scaling service and returns the
// engine-side driver: Run plays the report/poll/ack cycle until the
// service finishes the decision loop.
func Attach(c *service.Client, job *Job, spec service.JobSpec) *service.AttachedJob {
	return service.NewAttachedJob(c, NewRuntime(job), spec)
}

// Observation converts the interval for the in-process Controller.
// The snapshot builder is memoized so snapshot-blind autoscalers never
// pay the aggregation.
func (iv Interval) Observation() controlloop.Observation {
	obs := controlloop.Observation{
		Start:                iv.Start,
		End:                  iv.End,
		TargetRates:          iv.TargetRates,
		SourceObserved:       iv.SourceObserved,
		Backpressured:        iv.Backpressured,
		BackpressureFraction: iv.BackpressureFraction,
		Parallelism:          iv.Parallelism,
		Workers:              iv.Workers,
		Latencies:            iv.Latencies,
	}
	windows := iv.Windows
	obs.SnapshotFn = sync.OnceValues(func() (metrics.Snapshot, error) {
		return metrics.BuildSnapshot(iv.End, windows, iv.TargetRates)
	})
	return obs
}

// Report converts the interval into the scaling service's ingestion
// format. The server rebuilds the identical snapshot from it, which is
// what keeps in-process and service-driven decision loops in lockstep.
func (iv Interval) Report() service.Report {
	return service.Report{
		Start:                iv.Start,
		End:                  iv.End,
		Windows:              iv.Windows,
		TargetRates:          iv.TargetRates,
		SourceObserved:       iv.SourceObserved,
		Backpressured:        iv.Backpressured,
		BackpressureFraction: iv.BackpressureFraction,
		Parallelism:          iv.Parallelism,
		Workers:              iv.Workers,
		Latencies:            iv.Latencies,
	}
}
