package streamrt

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/metrics"
	"ds2/internal/obs"
	"ds2/internal/service"
)

// Engine is the part of the live-runtime surface the control adapters
// need: pace and cut observation windows, redeploy, report the deployed
// configuration. Both the single-process *Job and the distributed
// *Cluster implement it, so the Controller and ds2d drive either
// through the same Runtime.
type Engine interface {
	NextInterval(d float64) (Interval, error)
	Rescale(p dataflow.Parallelism) error
	Parallelism() dataflow.Parallelism
}

var (
	_ Engine = (*Job)(nil)
	_ Engine = (*Cluster)(nil)
)

// Runtime adapts a live engine (a Job, or a distributed Cluster) to
// both control surfaces:
//
//   - controlloop.Runtime, so the standard Controller drives the job
//     in-process — Advance paces on the wall clock (the job's real
//     time), Apply performs the savepoint-and-restore rescale
//     synchronously and discards the polluted partial window (settle
//     semantics, like the Flink integration of §4.1).
//   - service.AttachedEngine, so the same job registers with a ds2d
//     scaling service and is driven through the ingestion/poll/ack
//     API instead — indistinguishable from any other remote job.
type Runtime struct {
	eng Engine

	// Savepoint support (SavepointTo): the store service-requested
	// savepoints persist into, the name prefix, and a counter so each
	// request gets a distinct name.
	spStore  CheckpointStore
	spPrefix string
	spCount  atomic.Int64
}

// Savepointer is the savepoint surface the engines share: both *Job
// and *Cluster drain, persist to the store under name, and restart.
type Savepointer interface {
	Savepoint(store CheckpointStore, name string) error
}

var (
	_ Savepointer = (*Job)(nil)
	_ Savepointer = (*Cluster)(nil)
)

// NewRuntime wraps a running Job.
func NewRuntime(j *Job) *Runtime { return &Runtime{eng: j} }

// NewEngineRuntime wraps any live engine — in particular a *Cluster,
// making a multi-process deployment drivable by the Controller and
// attachable to ds2d exactly like a single-process job.
func NewEngineRuntime(e Engine) *Runtime { return &Runtime{eng: e} }

// Engine exposes the wrapped engine.
func (r *Runtime) Engine() Engine { return r.eng }

// Job exposes the wrapped job (nil when the runtime wraps a Cluster).
func (r *Runtime) Job() *Job {
	j, _ := r.eng.(*Job)
	return j
}

// Advance blocks until the job has run d more seconds of wall-clock
// time, then collects the interval's observation.
func (r *Runtime) Advance(d float64) (controlloop.Observation, error) {
	iv, err := r.eng.NextInterval(d)
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return controlloop.Observation{}, controlloop.ErrStopped
		}
		return controlloop.Observation{}, err
	}
	return iv.Observation(), nil
}

// Apply deploys the action's configuration via the engine's Rescale.
func (r *Runtime) Apply(act *core.Action) error {
	if err := r.eng.Rescale(act.New); err != nil {
		if errors.Is(err, ErrStopped) {
			return controlloop.ErrStopped
		}
		return err
	}
	return nil
}

// Parallelism returns the deployed configuration.
func (r *Runtime) Parallelism() dataflow.Parallelism { return r.eng.Parallelism() }

// NextReport implements service.AttachedEngine: one policy interval's
// instrumentation in the scaling service's wire format. A stopped job
// surfaces as controlloop.ErrStopped, which the attached driver treats
// as a clean end (it still fetches the service-side trace). Engines
// that trace rescales (Job and Cluster both do) piggyback their
// retained timelines on every report; the service dedups by trace ID,
// so resending the full ring is idempotent and delivers completions
// of timelines first shipped in flight.
func (r *Runtime) NextReport(intervalSec float64) (service.Report, error) {
	iv, err := r.eng.NextInterval(intervalSec)
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return service.Report{}, controlloop.ErrStopped
		}
		return service.Report{}, err
	}
	rep := iv.Report()
	if tv, ok := r.eng.(interface{ RescaleTraces() []obs.TraceView }); ok {
		rep.Rescales = tv.RescaleTraces()
	}
	return rep, nil
}

// Rescale implements service.AttachedEngine: deploy and report what
// was actually deployed (always the target — the live runtime deploys
// exactly what it is asked). Like NextReport, a stopped job surfaces
// as controlloop.ErrStopped so the attached driver ends cleanly.
func (r *Runtime) Rescale(p dataflow.Parallelism) (dataflow.Parallelism, error) {
	if err := r.eng.Rescale(p); err != nil {
		if errors.Is(err, ErrStopped) {
			return nil, controlloop.ErrStopped
		}
		return nil, err
	}
	return r.eng.Parallelism(), nil
}

// SavepointTo equips the runtime to execute service-requested
// savepoints: each request drains the engine, persists one savepoint
// named <prefix>-N into store, and restarts. Without it, savepoint
// requests from the service are answered with an error instead of a
// checkpoint. It returns the runtime for chaining.
func (r *Runtime) SavepointTo(store CheckpointStore, prefix string) *Runtime {
	if prefix == "" {
		prefix = "savepoint"
	}
	r.spStore = store
	r.spPrefix = prefix
	return r
}

// Savepoint implements service.SavepointEngine: cut one durable
// savepoint into the configured store and return where it landed (the
// file path for a DirStore, the store name otherwise). A stopped
// engine surfaces as controlloop.ErrStopped so the attached driver
// ends cleanly.
func (r *Runtime) Savepoint() (string, error) {
	if r.spStore == nil {
		return "", errors.New("streamrt: runtime has no checkpoint store (use SavepointTo)")
	}
	name := fmt.Sprintf("%s-%d", r.spPrefix, r.spCount.Add(1))
	if err := r.eng.(Savepointer).Savepoint(r.spStore, name); err != nil {
		if errors.Is(err, ErrStopped) {
			return "", controlloop.ErrStopped
		}
		return "", err
	}
	if ds, ok := r.spStore.(*DirStore); ok {
		return filepath.Join(ds.Dir(), name), nil
	}
	return name, nil
}

// Attach registers the job with a ds2d scaling service and returns the
// engine-side driver: Run plays the report/poll/ack cycle until the
// service finishes the decision loop.
func Attach(c *service.Client, job *Job, spec service.JobSpec) *service.AttachedJob {
	return service.NewAttachedJob(c, NewRuntime(job), spec)
}

// AttachEngine is Attach for any live engine — notably a distributed
// *Cluster, which ds2d then drives exactly like a single-process job.
func AttachEngine(c *service.Client, eng Engine, spec service.JobSpec) *service.AttachedJob {
	return service.NewAttachedJob(c, NewEngineRuntime(eng), spec)
}

// Observation converts the interval for the in-process Controller.
// The snapshot builder is memoized so snapshot-blind autoscalers never
// pay the aggregation.
func (iv Interval) Observation() controlloop.Observation {
	obs := controlloop.Observation{
		Start:                iv.Start,
		End:                  iv.End,
		TargetRates:          iv.TargetRates,
		SourceObserved:       iv.SourceObserved,
		Backpressured:        iv.Backpressured,
		BackpressureFraction: iv.BackpressureFraction,
		Parallelism:          iv.Parallelism,
		Workers:              iv.Workers,
		Latencies:            iv.Latencies,
	}
	windows := iv.Windows
	obs.SnapshotFn = sync.OnceValues(func() (metrics.Snapshot, error) {
		return metrics.BuildSnapshot(iv.End, windows, iv.TargetRates)
	})
	return obs
}

// Report converts the interval into the scaling service's ingestion
// format. The server rebuilds the identical snapshot from it, which is
// what keeps in-process and service-driven decision loops in lockstep.
func (iv Interval) Report() service.Report {
	return service.Report{
		Start:                iv.Start,
		End:                  iv.End,
		Windows:              iv.Windows,
		TargetRates:          iv.TargetRates,
		SourceObserved:       iv.SourceObserved,
		Backpressured:        iv.Backpressured,
		BackpressureFraction: iv.BackpressureFraction,
		Parallelism:          iv.Parallelism,
		Workers:              iv.Workers,
		Latencies:            iv.Latencies,
	}
}
