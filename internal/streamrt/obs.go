package streamrt

import (
	"time"

	"ds2/internal/metrics"
	"ds2/internal/obs"
)

// flushReason classifies why an exchange batch left the sender — the
// batching policy's observable behaviour. Size flushes dominate a
// saturated pipeline; a drift toward interval/idle flushes means the
// job is running under its batch budget.
type flushReason int

const (
	flushSize     flushReason = iota // batch reached Config.BatchSize
	flushDeadline                    // FlushInterval passed
	flushIdle                        // sender about to block on input
	flushPacing                      // source about to sleep for pacing
	flushExit                        // drain at teardown
	numFlushReasons
)

var flushReasonNames = [numFlushReasons]string{"size", "deadline", "idle", "pacing", "exit"}

// stallThreshold separates a backpressure stall from the nanoseconds
// an uncontended channel send costs: a send blocked this long was
// genuinely waiting on a full downstream queue.
const stallThreshold = 500 * time.Microsecond

// latencySampleStride is the exporter's record-latency sampling rate:
// sinks observe every 1024th record into the histogram. Power of two
// so the hot-path check is one mask; at 4M rec/s that is ~4k
// observations/s of a lock-free histogram — invisible next to the
// exchange itself, and still thousands of samples per policy interval.
const latencySampleStride = 1024

// timePhases are the §3 useful-time split plus the two waiting
// activities, exported as fractions of the observation window.
var timePhases = [5]string{"deserialization", "processing", "serialization", "waiting_input", "waiting_output"}

// jobObs is a Job's pre-resolved metric handles. Everything the hot
// path touches is resolved here, once, at job construction — workers
// never take the registry lock. A nil *jobObs (Config.Metrics unset)
// disables telemetry entirely; the hot path pays one nil check per
// batch.
type jobObs struct {
	reg *obs.Registry

	// Hot-path handles (atomic adds only).
	flushBatches [numFlushReasons]*obs.Counter
	flushRecords *obs.Counter
	stalls       *obs.Counter
	latHists     map[string]*obs.Histogram // per sink operator

	// rescale owns the reconfiguration-cost instrumentation: the trace
	// ring behind GET /jobs/{id}/rescales and the phase/downtime
	// histograms. Touched only while rescaling.
	rescale *rescaleObs

	// Collect-path handles, per operator.
	instances   map[string]*obs.Gauge
	fractions   map[string][len(timePhases)]*obs.Gauge
	trueProc    map[string]*obs.Gauge
	trueOut     map[string]*obs.Gauge
	obsProc     map[string]*obs.Gauge
	obsOut      map[string]*obs.Gauge
	bpFraction  map[string]*obs.Gauge
	srcTarget   map[string]*obs.Gauge
	srcObserved map[string]*obs.Gauge
}

func newJobObs(reg *obs.Registry, pipe *Pipeline, rescales func() int) *jobObs {
	o := &jobObs{
		reg:         reg,
		latHists:    make(map[string]*obs.Histogram),
		instances:   make(map[string]*obs.Gauge),
		fractions:   make(map[string][len(timePhases)]*obs.Gauge),
		trueProc:    make(map[string]*obs.Gauge),
		trueOut:     make(map[string]*obs.Gauge),
		obsProc:     make(map[string]*obs.Gauge),
		obsOut:      make(map[string]*obs.Gauge),
		bpFraction:  make(map[string]*obs.Gauge),
		srcTarget:   make(map[string]*obs.Gauge),
		srcObserved: make(map[string]*obs.Gauge),
	}
	o.rescale = newRescaleObs(reg)
	for r := flushReason(0); r < numFlushReasons; r++ {
		o.flushBatches[r] = reg.Counter("streamrt_batch_flushes_total",
			"Exchange batches flushed, by what triggered the flush.",
			obs.L("reason", flushReasonNames[r]))
	}
	o.flushRecords = reg.Counter("streamrt_flushed_records_total",
		"Records carried by flushed exchange batches (flushed_records/batch_flushes = mean batch size).")
	o.stalls = reg.Counter("streamrt_backpressure_stalls_total",
		"Batch sends that blocked on a full downstream queue.")
	reg.CounterFunc("streamrt_rescales_total", "Redeployments performed by the job.",
		func() float64 { return float64(rescales()) })

	g := pipe.graph
	for i := 0; i < g.NumOperators(); i++ {
		op := g.Operator(i)
		name := op.Name
		o.instances[name] = reg.Gauge("streamrt_operator_instances",
			"Deployed parallel instances per operator.", obs.L("operator", name))
		var fr [len(timePhases)]*obs.Gauge
		for p, phase := range timePhases {
			fr[p] = reg.Gauge("streamrt_time_fraction",
				"Fraction of the last observation window the operator's instances spent per activity (§3 time splits).",
				obs.L("operator", name), obs.L("phase", phase))
		}
		o.fractions[name] = fr
		o.trueProc[name] = reg.Gauge("streamrt_true_rate",
			"Per-operator true rate over the last window: records per second of useful time, summed over instances (Eq. 5-6).",
			obs.L("operator", name), obs.L("kind", "processing"))
		o.trueOut[name] = reg.Gauge("streamrt_true_rate",
			"Per-operator true rate over the last window: records per second of useful time, summed over instances (Eq. 5-6).",
			obs.L("operator", name), obs.L("kind", "output"))
		o.obsProc[name] = reg.Gauge("streamrt_observed_rate",
			"Per-operator observed rate over the last window: records per second of wall clock, summed over instances.",
			obs.L("operator", name), obs.L("kind", "processing"))
		o.obsOut[name] = reg.Gauge("streamrt_observed_rate",
			"Per-operator observed rate over the last window: records per second of wall clock, summed over instances.",
			obs.L("operator", name), obs.L("kind", "output"))
		o.bpFraction[name] = reg.Gauge("streamrt_backpressure_fraction",
			"Largest fraction of the last window any upstream instance spent blocked pushing into this operator.",
			obs.L("operator", name))
		if _, isSrc := pipe.sources[name]; isSrc {
			o.srcTarget[name] = reg.Gauge("streamrt_source_target_rate",
				"Target rate of the source at the last window cut, records/s.",
				obs.L("source", name))
			o.srcObserved[name] = reg.Gauge("streamrt_source_observed_rate",
				"Achieved output rate of the source over the last window, records/s.",
				obs.L("source", name))
		}
	}
	return o
}

// latHist resolves (once per sink operator) the record-latency
// histogram a sink instance records into. Buckets span 100µs..~1.6s.
func (o *jobObs) latHist(op string) *obs.Histogram {
	h, ok := o.latHists[op]
	if !ok {
		h = o.reg.Histogram("streamrt_record_latency_seconds",
			"Source-to-sink record latency, sampled every 1024th record at the sink.",
			obs.HistogramOpts{Min: 1e-4, Growth: 2, Buckets: 14},
			obs.L("operator", op))
		o.latHists[op] = h
	}
	return h
}

// flushed records one batch flush on the hot path: two atomic adds,
// plus a third when the send stalled on backpressure.
func (o *jobObs) flushed(reason flushReason, records int, blocked time.Duration) {
	o.flushBatches[reason].Inc()
	o.flushRecords.Add(uint64(records))
	if blocked >= stallThreshold {
		o.stalls.Inc()
	}
}

// observeInterval publishes one cut window's per-operator signals.
// Called from Collect with the interval already built; len(iv.Windows)
// can be 0 for a degenerate span, in which case gauges keep their last
// values.
func (o *jobObs) observeInterval(iv Interval) {
	span := iv.End - iv.Start
	if span <= 0 || len(iv.Windows) == 0 {
		return
	}
	for op, p := range iv.Parallelism {
		if g := o.instances[op]; g != nil {
			g.Set(float64(p))
		}
	}
	// iv.Windows is sorted by (operator, index); fold each operator's
	// run of windows into its gauges.
	for lo := 0; lo < len(iv.Windows); {
		hi := lo
		op := iv.Windows[lo].ID.Operator
		var phases [len(timePhases)]float64
		for hi < len(iv.Windows) && iv.Windows[hi].ID.Operator == op {
			w := iv.Windows[hi]
			phases[0] += w.Deserialization
			phases[1] += w.Processing
			phases[2] += w.Serialization
			phases[3] += w.WaitingInput
			phases[4] += w.WaitingOutput
			hi++
		}
		wall := span * float64(hi-lo)
		if fr, ok := o.fractions[op]; ok {
			for p := range phases {
				fr[p].Set(phases[p] / wall)
			}
		}
		if rates, err := metrics.AggregateOperator(iv.Windows[lo:hi]); err == nil {
			o.trueProc[op].Set(rates.TrueProcessing)
			o.trueOut[op].Set(rates.TrueOutput)
			o.obsProc[op].Set(rates.ObservedProcessing)
			o.obsOut[op].Set(rates.ObservedOutput)
		}
		lo = hi
	}
	// Explicitly zero operators absent from the backpressure map:
	// gauges hold their last value, and a bottleneck that cleared must
	// read 0, not its old fraction.
	for op, g := range o.bpFraction {
		g.Set(iv.BackpressureFraction[op])
	}
	for src, g := range o.srcTarget {
		g.Set(iv.TargetRates[src])
	}
	for src, g := range o.srcObserved {
		g.Set(iv.SourceObserved[src])
	}
}
