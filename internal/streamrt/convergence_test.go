// The acceptance pin for the live runtime: a real executing wordcount
// job, instrumented only with wall-clock time.Now() measurements (no
// simulator anywhere in the package), driven by the DS2 policy through
// the standard Controller, reaches a stable provisioning within three
// policy intervals of a source-rate step change.
package streamrt_test

import (
	"fmt"
	"testing"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// liveWordcountish builds source -> split -> count with sleep-based
// per-record costs, so instance capacity is exactly 1/cost records per
// second of useful time regardless of machine load:
//
//	split capacity 250 rec/s  (4 ms/record), selectivity 5
//	count capacity ~833 rec/s (1.2 ms/record), keyed over 64 keys
//
// At 100 rec/s the optimum is {src:1, split:1, count:1}; at 400 rec/s
// it is {src:1, split:2, count:3} — both comfortably mid-bucket, so
// wall-clock jitter cannot flip a ceil().
func liveWordcountish(t *testing.T, rate func(float64) float64) *streamrt.Pipeline {
	t.Helper()
	const fan = 5
	p, err := streamrt.NewPipeline().
		AddSource("src", streamrt.SourceSpec{
			Rate: rate,
			Next: func(seq int64) (string, any) { return "", seq },
		}).
		AddOperator("split", streamrt.OperatorSpec{
			Process: func(_ any, _ string, v any, emit streamrt.Emit) any {
				base := v.(int64) * fan
				for i := int64(0); i < fan; i++ {
					emit(fmt.Sprintf("k%02d", (base+i)%64), "w")
				}
				return nil
			},
			Cost: 4 * time.Millisecond,
		}).
		AddOperator("count", streamrt.OperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, _ any, _ streamrt.Emit) any {
				c, _ := state.(int)
				return c + 1
			},
			Cost:  1200 * time.Microsecond,
			Codec: streamrt.StringCodec{},
		}).
		AddEdge("src", "split").
		AddEdge("split", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// liveManager builds the DS2 autoscaler for the pipeline. The 0.8
// target-rate ratio keeps the §4.2.1 boost from amplifying transient
// wall-clock dips in the achieved rate into spurious decisions.
func liveManager(t *testing.T, g *dataflow.Graph, initial dataflow.Parallelism) controlloop.Autoscaler {
	t.Helper()
	pol, err := core.NewPolicy(g, core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, initial, core.ManagerConfig{TargetRateRatio: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	return controlloop.DS2Autoscaler(mgr)
}

func TestDS2ConvergesOnLiveJobWithinThreeIntervals(t *testing.T) {
	const (
		interval  = 0.2
		stepAt    = 0.8
		rateLow   = 100.0
		rateHigh  = 400.0
		intervals = 14
	)
	rate := func(tm float64) float64 {
		if tm >= stepAt {
			return rateHigh
		}
		return rateLow
	}
	p := liveWordcountish(t, rate)
	initial := dataflow.Parallelism{"src": 1, "split": 1, "count": 1}
	job, err := streamrt.NewJob(p, initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	ctrl, err := controlloop.New(streamrt.NewRuntime(job), liveManager(t, p.Graph(), initial),
		controlloop.Config{Interval: interval, MaxIntervals: intervals})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ctrl.Run()
	if err != nil {
		t.Fatalf("controller: %v\n%s", err, tr)
	}

	want := dataflow.Parallelism{"src": 1, "split": 2, "count": 3}
	if !tr.Final.Equal(want) {
		t.Fatalf("final = %s, want %s\n%s", tr.Final, want, tr)
	}
	if tr.Decisions < 1 {
		t.Fatalf("no decisions taken\n%s", tr)
	}

	// Locate the first interval that saw the post-step target; every
	// decision must land within three intervals of it, and everything
	// after must be quiet (stable provisioning).
	firstStep, lastAction := -1, -1
	for i, iv := range tr.Intervals {
		if firstStep < 0 && iv.Target > rateLow*1.5 {
			firstStep = i
		}
		if iv.Action != "" {
			if firstStep < 0 {
				t.Fatalf("decision before the step change at interval %d\n%s", i, tr)
			}
			lastAction = i
		}
	}
	if firstStep < 0 {
		t.Fatalf("step change never observed\n%s", tr)
	}
	if lastAction < 0 || lastAction > firstStep+2 {
		t.Fatalf("last action at interval %d, want within 3 intervals of step at %d\n%s",
			lastAction, firstStep, tr)
	}
	if quiet := len(tr.Intervals) - 1 - lastAction; quiet < 3 {
		t.Fatalf("only %d quiet intervals after convergence\n%s", quiet, tr)
	}

	// The converged deployment must actually sustain the rate.
	last := tr.Last()
	if last.Achieved < rateHigh*0.7 {
		t.Errorf("achieved %v rec/s at the converged config, want ~%v\n%s",
			last.Achieved, rateHigh, tr)
	}
}
