// Typed builder acceptance: a typed pipeline runs identically to its
// untyped equivalent, and Compile rejects each class of graph mistake
// at build time with an error naming the offending node or edge.
package streamrt_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// typedWordcountish is distWordcountish built through the typed
// builder: src (int64 seqs) -> split (fan words) -> count (keyed int
// state), with the codecs a distributed deployment needs.
func typedWordcountish(t *testing.T, rate func(float64) float64, limit int64, distributed bool) *streamrt.Pipeline {
	t.Helper()
	tb := streamrt.NewTypedPipeline()
	if distributed {
		tb.Distributed()
	}
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int64]{
		Rate:  rate,
		Next:  func(seq int64) (string, int64) { return "", seq },
		Limit: limit,
	})
	streamrt.AddTypedOperator(tb, "split", streamrt.TypedOperator[int64, string, any]{
		Process: func(_ any, _ string, v int64, emit streamrt.TypedEmit[string]) any {
			base := v * distFan
			for i := int64(0); i < distFan; i++ {
				emit.Emit(fmt.Sprintf("k%02d", (base+i)%64), "w")
			}
			return nil
		},
		Codec: i64Codec{},
	})
	streamrt.AddTypedOperator(tb, "count", streamrt.TypedOperator[string, any, int]{
		Keyed: true,
		Process: func(c int, _ string, _ string, _ streamrt.TypedEmit[any]) int {
			return c + 1
		},
		Codec: streamrt.StringCodec{},
		State: streamrt.IntStateCodec{},
	})
	p, err := tb.
		AddEdge("src", "split").
		AddEdge("split", "count").
		Compile()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTypedPipelineMatchesReplayOracle(t *testing.T) {
	const limit = 20000
	p := typedWordcountish(t, func(float64) float64 { return 1e12 }, limit, false)
	job, err := streamrt.NewJob(p, dataflow.Parallelism{"src": 1, "split": 2, "count": 2}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	got := job.Stop()
	if !reflect.DeepEqual(got["count"], expectedCounts(limit)) {
		t.Fatalf("typed pipeline diverged from the replay oracle:\n got: %v\nwant: %v", got["count"], expectedCounts(limit))
	}
}

// wantCompileError asserts Compile fails and the error mentions every
// fragment — in particular the offending node or edge's name.
func wantCompileError(t *testing.T, tb *streamrt.TypedBuilder, fragments ...string) {
	t.Helper()
	p, err := tb.Compile()
	if err == nil {
		t.Fatalf("Compile accepted an invalid graph (got pipeline %v)", p)
	}
	for _, f := range fragments {
		if !strings.Contains(err.Error(), f) {
			t.Fatalf("Compile error %q does not mention %q", err, f)
		}
	}
}

func constRate(float64) float64 { return 1 }

func TestCompileRejectsEdgeTypeMismatch(t *testing.T) {
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int64]{
		Rate: constRate,
		Next: func(seq int64) (string, int64) { return "", seq },
	})
	streamrt.AddTypedOperator(tb, "sink", streamrt.TypedOperator[string, any, any]{
		Process: func(_ any, _ string, _ string, _ streamrt.TypedEmit[any]) any { return nil },
	})
	tb.AddEdge("src", "sink")
	wantCompileError(t, tb, "edge src -> sink", "src emits int64", "sink consumes string")
}

func TestCompileAcceptsInterfaceEscapeHatch(t *testing.T) {
	// In = any consumes anything; Out = any defeats the static check on
	// outgoing edges (the join idiom) — both must compile.
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int64]{
		Rate: constRate,
		Next: func(seq int64) (string, int64) { return "", seq },
	})
	streamrt.AddTypedOperator(tb, "join", streamrt.TypedOperator[any, any, any]{
		Process: func(_ any, _ string, _ any, _ streamrt.TypedEmit[any]) any { return nil },
	})
	streamrt.AddTypedOperator(tb, "sink", streamrt.TypedOperator[string, any, any]{
		Process: func(_ any, _ string, _ string, _ streamrt.TypedEmit[any]) any { return nil },
	})
	if _, err := tb.AddEdge("src", "join").AddEdge("join", "sink").Compile(); err != nil {
		t.Fatalf("interface-typed edges were rejected: %v", err)
	}
}

func TestCompileRejectsDistributedOperatorWithoutCodec(t *testing.T) {
	tb := streamrt.NewTypedPipeline().Distributed()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int64]{
		Rate: constRate,
		Next: func(seq int64) (string, int64) { return "", seq },
	})
	streamrt.AddTypedOperator(tb, "sink", streamrt.TypedOperator[int64, any, any]{
		Process: func(_ any, _ string, _ int64, _ streamrt.TypedEmit[any]) any { return nil },
	})
	tb.AddEdge("src", "sink")
	wantCompileError(t, tb, `distributed operator "sink" has no Codec`)
}

func TestCompileRejectsDistributedKeyedOperatorWithoutStateCodec(t *testing.T) {
	tb := streamrt.NewTypedPipeline().Distributed()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[string]{
		Rate: constRate,
		Next: func(seq int64) (string, string) { return "k", "v" },
	})
	streamrt.AddTypedOperator(tb, "count", streamrt.TypedOperator[string, any, int]{
		Keyed:   true,
		Process: func(c int, _ string, _ string, _ streamrt.TypedEmit[any]) int { return c + 1 },
		Codec:   streamrt.StringCodec{},
	})
	tb.AddEdge("src", "count")
	wantCompileError(t, tb, `distributed keyed operator "count" has no StateCodec`)
}

func TestCompileRejectsWindowOnUnkeyedOperator(t *testing.T) {
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int]{
		Rate: constRate,
		Next: func(seq int64) (string, int) { return "k", 1 },
	})
	streamrt.AddTypedOperator(tb, "window", streamrt.TypedOperator[int, int, int]{
		Process: func(c int, _ string, v int, _ streamrt.TypedEmit[int]) int { return c + v },
		Window: &streamrt.TypedWindow[int, int]{
			Size: time.Second,
			Fire: func(key string, agg int, emit streamrt.TypedEmit[int]) { emit.Emit(key, agg) },
		},
	})
	tb.AddEdge("src", "window")
	wantCompileError(t, tb, `operator "window"`, "windowed operators must be keyed")
}

func TestCompileRejectsSlidingWindowWithoutCombine(t *testing.T) {
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int]{
		Rate: constRate,
		Next: func(seq int64) (string, int) { return "k", 1 },
	})
	streamrt.AddTypedOperator(tb, "window", streamrt.TypedOperator[int, int, int]{
		Keyed:   true,
		Process: func(c int, _ string, v int, _ streamrt.TypedEmit[int]) int { return c + v },
		Window: &streamrt.TypedWindow[int, int]{
			Size:  time.Second,
			Slide: 500 * time.Millisecond,
			Fire:  func(key string, agg int, emit streamrt.TypedEmit[int]) { emit.Emit(key, agg) },
		},
	})
	tb.AddEdge("src", "window")
	wantCompileError(t, tb, `operator "window"`, "has no Combine")
}

// TestCompileFirstFailureWins pins the builder error-accumulation fix:
// the error Compile reports is the FIRST mistake, naming its node —
// later (possibly consequential) mistakes never mask it.
func TestCompileFirstFailureWins(t *testing.T) {
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int]{
		Rate: constRate,
		Next: func(seq int64) (string, int) { return "k", 1 },
	})
	streamrt.AddTypedOperator(tb, "sink", streamrt.TypedOperator[int, any, any]{
		Process: func(_ any, _ string, _ int, _ streamrt.TypedEmit[any]) any { return nil },
	})
	// First mistake: duplicate node name. Then pile on a nameless
	// operator and an edge to a node that does not exist.
	streamrt.AddTypedOperator(tb, "sink", streamrt.TypedOperator[int, any, any]{
		Process: func(_ any, _ string, _ int, _ streamrt.TypedEmit[any]) any { return nil },
	})
	streamrt.AddTypedOperator(tb, "", streamrt.TypedOperator[int, any, any]{})
	tb.AddEdge("src", "elsewhere")
	wantCompileError(t, tb, `duplicate operator "sink"`)
}

func TestCompileNamesUnknownEdgeEndpoint(t *testing.T) {
	tb := streamrt.NewTypedPipeline()
	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[int]{
		Rate: constRate,
		Next: func(seq int64) (string, int) { return "k", 1 },
	})
	streamrt.AddTypedOperator(tb, "sink", streamrt.TypedOperator[int, any, any]{
		Process: func(_ any, _ string, _ int, _ streamrt.TypedEmit[any]) any { return nil },
	})
	tb.AddEdge("src", "sink").AddEdge("sink", "nowhere")
	wantCompileError(t, tb, `edge to unknown operator "nowhere"`)
}
