package streamrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The distributed exchange speaks length-prefixed binary frames over
// persistent TCP connections (one per ordered worker pair, plus one
// control connection per worker from the coordinator):
//
//	frame   := u32le length | u8 type | payload
//
// length counts the type byte plus the payload, so a receiver reads
// exactly 4+length bytes per frame. The data plane reuses the PR 6
// batch wire format verbatim: a DATA frame is one exchange batch,
// whose records carry the AppendEncoder bytes framed by the batch
// header rather than by per-record prefixes inside the value stream:
//
//	data    := u32 gen | u16 op | u16 inst | u32 count | count×record
//	record  := u16 keyLen | key | i64 srcUnixNano | u32 valLen | val
//
//	hello   := u32 proto | u32 sender   (sender 0xFFFFFFFF = coordinator)
//	credit  := u32 gen | u16 op | u16 inst | u32 credits
//	done    := u32 gen | u16 op
//	control := u32 req | u8 kind | JSON
//	reply   := u32 req | u8 ok  | JSON
//
// gen tags every data-plane frame with the deployment generation, so
// frames straggling across a rescale are discarded instead of
// corrupting the next deployment's credit accounting. All integers are
// little-endian. Decoding is pure slice arithmetic with explicit bounds
// checks — a truncated, oversized, or corrupt-length frame errors
// cleanly and never over-reads (pinned by FuzzFrameDecode).

// frameProto is the transport protocol version carried in hello frames.
const frameProto = 1

// helloCoordinator is the hello sender value identifying the
// coordinator's control connection (data links carry the dialing
// worker's index).
const helloCoordinator = 0xFFFFFFFF

// maxFrameLen bounds a frame's declared length: anything larger is a
// corrupt length prefix (the send path never produces frames beyond
// BatchSize records, far under this), and rejecting it early keeps a
// flipped length bit from allocating gigabytes or desynchronizing the
// stream.
const maxFrameLen = 16 << 20

// Frame types.
const (
	frameHello   = byte(1)
	frameData    = byte(2)
	frameCredit  = byte(3)
	frameDone    = byte(4)
	frameControl = byte(5)
	frameReply   = byte(6)
)

var (
	errFrameLength = errors.New("streamrt: frame length exceeds maximum")
	errFrameEmpty  = errors.New("streamrt: zero-length frame")
	errFrameShort  = errors.New("streamrt: truncated frame payload")
)

// readFrame reads one frame from r into buf (grown as needed),
// returning the type, the payload (aliasing buf), and the possibly
// regrown buffer. io.EOF is returned only at a clean frame boundary;
// a connection dying mid-frame is io.ErrUnexpectedEOF.
func readFrame(r io.Reader, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, nil, buf, io.EOF
		}
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, buf, errFrameEmpty
	}
	if n > maxFrameLen {
		return 0, nil, buf, fmt.Errorf("%w: %d > %d", errFrameLength, n, maxFrameLen)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// beginFrame reserves a frame header in dst and returns the payload
// start offset for endFrame.
func beginFrame(dst []byte, typ byte) ([]byte, int) {
	dst = append(dst, 0, 0, 0, 0, typ)
	return dst, len(dst)
}

// endFrame backfills the length prefix of the frame whose payload
// started at off (as returned by beginFrame).
func endFrame(dst []byte, off int) []byte {
	binary.LittleEndian.PutUint32(dst[off-5:], uint32(len(dst)-off+1))
	return dst
}

// appendU16/appendU32/appendU64 are the little-endian append helpers of
// the frame writer.
func appendU16(dst []byte, v uint16) []byte {
	return append(dst, byte(v), byte(v>>8))
}

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// dataHeader is the fixed prefix of a DATA frame payload.
type dataHeader struct {
	gen   uint32
	op    uint16
	inst  uint16
	count uint32
}

const dataHeaderLen = 4 + 2 + 2 + 4

// parseDataHeader splits a DATA payload into its header and the record
// bytes.
func parseDataHeader(p []byte) (dataHeader, []byte, error) {
	if len(p) < dataHeaderLen {
		return dataHeader{}, nil, fmt.Errorf("%w: data header %d < %d bytes", errFrameShort, len(p), dataHeaderLen)
	}
	h := dataHeader{
		gen:   binary.LittleEndian.Uint32(p),
		op:    binary.LittleEndian.Uint16(p[4:]),
		inst:  binary.LittleEndian.Uint16(p[6:]),
		count: binary.LittleEndian.Uint32(p[8:]),
	}
	return h, p[dataHeaderLen:], nil
}

// nextRecord splits one record off the front of a DATA frame's record
// bytes. Returned slices alias p.
func nextRecord(p []byte) (key []byte, srcNano int64, val, rest []byte, err error) {
	if len(p) < 2 {
		return nil, 0, nil, nil, fmt.Errorf("%w: record key length", errFrameShort)
	}
	klen := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) < klen+8+4 {
		return nil, 0, nil, nil, fmt.Errorf("%w: record body", errFrameShort)
	}
	key = p[:klen]
	p = p[klen:]
	srcNano = int64(binary.LittleEndian.Uint64(p))
	vlen := int(binary.LittleEndian.Uint32(p[8:]))
	p = p[12:]
	if len(p) < vlen {
		return nil, 0, nil, nil, fmt.Errorf("%w: record value %d > %d remaining", errFrameShort, vlen, len(p))
	}
	return key, srcNano, p[:vlen], p[vlen:], nil
}

// creditMsg is a CREDIT frame payload.
type creditMsg struct {
	gen     uint32
	op      uint16
	inst    uint16
	credits uint32
}

const creditLen = 4 + 2 + 2 + 4

func appendCredit(dst []byte, m creditMsg) []byte {
	var off int
	dst, off = beginFrame(dst, frameCredit)
	dst = appendU32(dst, m.gen)
	dst = appendU16(dst, m.op)
	dst = appendU16(dst, m.inst)
	dst = appendU32(dst, m.credits)
	return endFrame(dst, off)
}

func parseCredit(p []byte) (creditMsg, error) {
	if len(p) != creditLen {
		return creditMsg{}, fmt.Errorf("%w: credit payload %d != %d bytes", errFrameShort, len(p), creditLen)
	}
	return creditMsg{
		gen:     binary.LittleEndian.Uint32(p),
		op:      binary.LittleEndian.Uint16(p[4:]),
		inst:    binary.LittleEndian.Uint16(p[6:]),
		credits: binary.LittleEndian.Uint32(p[8:]),
	}, nil
}

// doneMsg is a DONE frame payload: one upstream instance of op exited.
type doneMsg struct {
	gen uint32
	op  uint16
}

const doneLen = 4 + 2

func appendDone(dst []byte, m doneMsg) []byte {
	var off int
	dst, off = beginFrame(dst, frameDone)
	dst = appendU32(dst, m.gen)
	dst = appendU16(dst, m.op)
	return endFrame(dst, off)
}

func parseDone(p []byte) (doneMsg, error) {
	if len(p) != doneLen {
		return doneMsg{}, fmt.Errorf("%w: done payload %d != %d bytes", errFrameShort, len(p), doneLen)
	}
	return doneMsg{gen: binary.LittleEndian.Uint32(p), op: binary.LittleEndian.Uint16(p[4:])}, nil
}

// helloMsg is a HELLO frame payload, the first frame on every
// connection.
type helloMsg struct {
	proto  uint32
	sender uint32
}

const helloLen = 4 + 4

func appendHello(dst []byte, m helloMsg) []byte {
	var off int
	dst, off = beginFrame(dst, frameHello)
	dst = appendU32(dst, m.proto)
	dst = appendU32(dst, m.sender)
	return endFrame(dst, off)
}

func parseHello(p []byte) (helloMsg, error) {
	if len(p) != helloLen {
		return helloMsg{}, fmt.Errorf("%w: hello payload %d != %d bytes", errFrameShort, len(p), helloLen)
	}
	return helloMsg{proto: binary.LittleEndian.Uint32(p), sender: binary.LittleEndian.Uint32(p[4:])}, nil
}

// ctrlMsg is a CONTROL or REPLY frame payload: a correlation id, a kind
// (or ok flag for replies), and a JSON body.
type ctrlMsg struct {
	req  uint32
	kind byte
	body []byte
}

func appendCtrl(dst []byte, typ byte, m ctrlMsg) []byte {
	var off int
	dst, off = beginFrame(dst, typ)
	dst = appendU32(dst, m.req)
	dst = append(dst, m.kind)
	dst = append(dst, m.body...)
	return endFrame(dst, off)
}

func parseCtrl(p []byte) (ctrlMsg, error) {
	if len(p) < 5 {
		return ctrlMsg{}, fmt.Errorf("%w: control payload %d < 5 bytes", errFrameShort, len(p))
	}
	return ctrlMsg{req: binary.LittleEndian.Uint32(p), kind: p[4], body: p[5:]}, nil
}
