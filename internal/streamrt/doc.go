// Package streamrt is an in-process streaming dataflow runtime that
// actually executes operators — the "real engine" counterpart to the
// fluid simulator in internal/engine, instrumented exactly as the
// paper's §3 prescribes with wall-clock time.Now() measurements.
//
// # Execution model
//
// A Pipeline is a logical dataflow graph whose vertices carry
// executable specs: sources generate records at a target rate,
// operators run a user function per record. A Job deploys the
// pipeline at a Parallelism: every operator instance is one goroutine
// owning one bounded channel as its input queue. Upstream instances
// push into downstream queues directly — hash-partitioned by record
// key into keyed operators, round-robin otherwise — so a full queue
// blocks the sender: backpressure is emergent, not modeled.
//
// # Building pipelines
//
// Pipelines are built with the typed builder: generic source and
// operator specs whose Process/Fire/Combine signatures the Go
// compiler checks, and whose graph the Compile step validates — edge
// type compatibility, codec completeness on Distributed pipelines,
// window/key rules — rejecting mistakes at build time with errors
// that name the offending node or edge:
//
//	tb := streamrt.NewTypedPipeline()
//	streamrt.AddTypedSource(tb, "src", streamrt.TypedSource[string]{
//		Rate: func(t float64) float64 { return 100 },
//		Next: func(seq int64) (string, string) { return "", sentence(seq) },
//	})
//	streamrt.AddTypedOperator(tb, "split", streamrt.TypedOperator[string, string, any]{
//		Process: func(_ any, _ string, v string, emit streamrt.TypedEmit[string]) any {
//			for _, w := range strings.Fields(v) {
//				emit.Emit(w, w)
//			}
//			return nil
//		},
//	})
//	streamrt.AddTypedOperator(tb, "count", streamrt.TypedOperator[string, any, int]{
//		Keyed:   true,
//		Process: func(c int, _, _ string, _ streamrt.TypedEmit[any]) int { return c + 1 },
//		State:   streamrt.IntStateCodec{},
//	})
//	p, err := tb.AddEdge("src", "split").AddEdge("split", "count").Compile()
//
// Compile lowers the typed specs onto the untyped
// SourceSpec/OperatorSpec representation that job.go/dist.go execute
// — the runtime and its zero-allocation exchange are untouched, and
// the untyped NewPipeline builder remains available as an escape
// hatch (joins with heterogeneous inputs use In = any the same way).
//
// # Savepoints
//
// Job.Savepoint and Cluster.Savepoint drain the dataflow, encode its
// keyed state and source sequence counters into a versioned,
// CRC-guarded binary blob (see checkpoint.go for the format), persist
// it under a name in a CheckpointStore (DirStore publishes
// atomically via write-fsync-rename), and restart — the rescale
// cycle with a persist phase spliced in, traced on the same ring and
// observed into streamrt_savepoint_seconds. NewJobFromSavepoint and
// NewClusterFromSavepoint deploy a fresh job from such a blob:
// operator parallelism may differ from the cut (state repartitions
// through the ordinary deploy path) and sources resume their
// sequence space exactly where it stopped, so a bounded stream
// savepointed, killed, and restored produces byte-identical final
// state to an uninterrupted run.
//
// # Instrumentation (§3)
//
// Each instance splits its elapsed time into the paper's four buckets
// with real clock readings taken around each activity:
//
//	waiting for input   — blocked receiving from the input channel
//	                      (sources: the rate-limiter pause)
//	deserialization     — decoding the incoming record (when the
//	                      operator declares a Codec)
//	processing          — the user function plus per-record Cost
//	serialization       — encoding outgoing records for the exchange
//	waiting for output  — blocked pushing into a full downstream queue
//
// Deserialization + processing + serialization is the useful time Wu;
// true rates are records/Wu, so a backpressured or underutilized
// instance still reports its capacity — the paper's core observation.
// Job.Collect cuts one metrics.WindowMetrics per instance per policy
// interval via metrics.WindowFromDurations, which absorbs the timer
// jitter of records straddling a window cut.
//
// # Rescaling
//
// Job.Rescale performs the savepoint-and-restore cycle of §4.1: stop
// the sources, drain the pipeline (channels close in cascade once all
// upstream instances exit, so every in-flight record is processed),
// snapshot the keyed state of every stateful instance, repartition it
// by hash under the new parallelism, and restart fresh instances. The
// pause pollutes the running observation window, so Rescale discards
// it, exactly like the settling EngineRuntime resets its metrics on
// restart. Source sequence counters survive the cycle, so every
// generated record is processed exactly once across rescales.
//
// # Driving it
//
// Runtime adapts a Job to controlloop.Runtime, so the standard
// Controller and every policy (DS2, Dhalion, queueing, hold) drive a
// live job unchanged — Advance paces on the wall clock instead of
// virtual time. The same Runtime implements service.AttachedEngine, so
// Attach registers the job with a ds2d scaling service through the
// ordinary ingestion/poll/ack API: to the server, a live job and a
// simulated one are indistinguishable.
package streamrt
