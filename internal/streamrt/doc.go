// Package streamrt is an in-process streaming dataflow runtime that
// actually executes operators — the "real engine" counterpart to the
// fluid simulator in internal/engine, instrumented exactly as the
// paper's §3 prescribes with wall-clock time.Now() measurements.
//
// # Execution model
//
// A Pipeline is a logical dataflow graph (built with the same
// AddSource/AddOperator/AddEdge surface as internal/dataflow) whose
// vertices carry executable specs: sources generate records at a
// target rate, operators run a user function per record. A Job deploys
// the pipeline at a Parallelism: every operator instance is one
// goroutine owning one bounded channel as its input queue. Upstream
// instances push into downstream queues directly — hash-partitioned by
// record key into keyed operators, round-robin otherwise — so a full
// queue blocks the sender: backpressure is emergent, not modeled.
//
// # Instrumentation (§3)
//
// Each instance splits its elapsed time into the paper's four buckets
// with real clock readings taken around each activity:
//
//	waiting for input   — blocked receiving from the input channel
//	                      (sources: the rate-limiter pause)
//	deserialization     — decoding the incoming record (when the
//	                      operator declares a Codec)
//	processing          — the user function plus per-record Cost
//	serialization       — encoding outgoing records for the exchange
//	waiting for output  — blocked pushing into a full downstream queue
//
// Deserialization + processing + serialization is the useful time Wu;
// true rates are records/Wu, so a backpressured or underutilized
// instance still reports its capacity — the paper's core observation.
// Job.Collect cuts one metrics.WindowMetrics per instance per policy
// interval via metrics.WindowFromDurations, which absorbs the timer
// jitter of records straddling a window cut.
//
// # Rescaling
//
// Job.Rescale performs the savepoint-and-restore cycle of §4.1: stop
// the sources, drain the pipeline (channels close in cascade once all
// upstream instances exit, so every in-flight record is processed),
// snapshot the keyed state of every stateful instance, repartition it
// by hash under the new parallelism, and restart fresh instances. The
// pause pollutes the running observation window, so Rescale discards
// it, exactly like the settling EngineRuntime resets its metrics on
// restart. Source sequence counters survive the cycle, so every
// generated record is processed exactly once across rescales.
//
// # Driving it
//
// Runtime adapts a Job to controlloop.Runtime, so the standard
// Controller and every policy (DS2, Dhalion, queueing, hold) drive a
// live job unchanged — Advance paces on the wall clock instead of
// virtual time. The same Runtime implements service.AttachedEngine, so
// Attach registers the job with a ds2d scaling service through the
// ordinary ingestion/poll/ack API: to the server, a live job and a
// simulated one are indistinguishable.
package streamrt
