package streamrt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
	"time"
)

// buildDataFrame encodes one DATA frame via the real send path (a link
// writing into a throwaway buffer would need a socket; sendData's
// encoding is replicated through the append helpers it uses).
func buildDataFrame(gen uint32, op, inst uint16, recs [][3]string) []byte {
	dst, off := beginFrame(nil, frameData)
	dst = appendU32(dst, gen)
	dst = appendU16(dst, op)
	dst = appendU16(dst, inst)
	dst = appendU32(dst, uint32(len(recs)))
	for _, r := range recs {
		dst = appendU16(dst, uint16(len(r[0])))
		dst = append(dst, r[0]...)
		dst = appendU64(dst, uint64(time.Now().UnixNano()))
		dst = appendU32(dst, uint32(len(r[1])))
		dst = append(dst, r[1]...)
	}
	return endFrame(dst, off)
}

// decodeAll drives the full receive-side decode surface over a byte
// stream, the shared core of the fuzz target and the error-path tests.
func decodeAll(data []byte) error {
	r := bytes.NewReader(data)
	var buf []byte
	for {
		typ, payload, nbuf, err := readFrame(r, buf)
		buf = nbuf
		if err != nil {
			return err
		}
		if len(payload) > maxFrameLen {
			panic("payload exceeds declared maximum")
		}
		switch typ {
		case frameHello:
			parseHello(payload)
		case frameData:
			h, recs, err := parseDataHeader(payload)
			if err != nil {
				continue
			}
			for i := uint32(0); i < h.count; i++ {
				_, _, _, rest, err := nextRecord(recs)
				if err != nil {
					break
				}
				recs = rest
			}
		case frameCredit:
			parseCredit(payload)
		case frameDone:
			parseDone(payload)
		case frameControl, frameReply:
			parseCtrl(payload)
		}
	}
}

// FuzzFrameDecode pins the decoder's safety contract: any byte stream —
// truncated, oversized, corrupt-length, bit-flipped — either decodes or
// errors cleanly. No panic, no over-read (slice bounds are the proof:
// an over-read panics under the race/fuzz harness), no unbounded
// allocation (readFrame rejects lengths beyond maxFrameLen before
// allocating).
func FuzzFrameDecode(f *testing.F) {
	// Seed corpus: every frame type well-formed, then the classic
	// corruptions.
	valid := appendHello(nil, helloMsg{proto: frameProto, sender: 3})
	valid = appendCredit(valid, creditMsg{gen: 1, op: 2, inst: 3, credits: 4})
	valid = appendDone(valid, doneMsg{gen: 1, op: 2})
	valid = appendCtrl(valid, frameControl, ctrlMsg{req: 9, kind: ctrlDeploy, body: []byte(`{"workload":"x"}`)})
	valid = append(valid, buildDataFrame(7, 1, 0, [][3]string{{"k1", "v1"}, {"", "v2"}, {"k3", ""}})...)
	f.Add(valid)
	f.Add(valid[:len(valid)-3]) // truncated mid-frame
	f.Add([]byte{0, 0, 0, 0})   // zero-length frame
	oversized := binary.LittleEndian.AppendUint32(nil, maxFrameLen+1)
	f.Add(append(oversized, 0xFF))
	// Data frame whose count promises more records than the payload holds.
	lying := buildDataFrame(1, 0, 0, [][3]string{{"k", "v"}})
	binary.LittleEndian.PutUint32(lying[4+1+4+2+2:], 1000)
	f.Add(lying)
	// Record whose value length points past the payload end.
	overVal := buildDataFrame(1, 0, 0, [][3]string{{"k", "v"}})
	binary.LittleEndian.PutUint32(overVal[len(overVal)-5:], 1<<30)
	f.Add(overVal)
	f.Add([]byte{})
	f.Add([]byte{5})

	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAll(data)
	})
}

func TestFrameDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"zero-length frame", []byte{0, 0, 0, 0}, errFrameEmpty},
		{"oversized length", binary.LittleEndian.AppendUint32(nil, maxFrameLen+1), errFrameLength},
		{"truncated header", []byte{9, 0}, io.ErrUnexpectedEOF},
		{"truncated payload", []byte{9, 0, 0, 0, frameData, 1, 2}, io.ErrUnexpectedEOF},
	}
	for _, tc := range cases {
		if err := decodeAll(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	// A clean boundary after valid frames is io.EOF, not an error.
	ok := appendDone(nil, doneMsg{gen: 1, op: 2})
	if err := decodeAll(ok); !errors.Is(err, io.EOF) {
		t.Errorf("clean stream: got %v, want io.EOF", err)
	}
	// The same stream cut mid-frame is an unexpected EOF.
	if err := decodeAll(ok[:len(ok)-1]); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("cut stream: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var stream []byte
	stream = appendHello(stream, helloMsg{proto: frameProto, sender: 12})
	stream = appendCredit(stream, creditMsg{gen: 5, op: 6, inst: 7, credits: 8})
	stream = appendDone(stream, doneMsg{gen: 5, op: 6})
	stream = appendCtrl(stream, frameReply, ctrlMsg{req: 44, kind: 1, body: []byte(`{}`)})
	recs := [][3]string{{"alpha", "one"}, {"beta", ""}, {"", "three"}}
	stream = append(stream, buildDataFrame(3, 1, 2, recs)...)

	r := bytes.NewReader(stream)
	var buf []byte
	next := func(wantTyp byte) []byte {
		t.Helper()
		typ, payload, nbuf, err := readFrame(r, buf)
		buf = nbuf
		if err != nil || typ != wantTyp {
			t.Fatalf("readFrame: typ=%d err=%v, want typ=%d", typ, err, wantTyp)
		}
		return payload
	}
	if h, err := parseHello(next(frameHello)); err != nil || h.sender != 12 {
		t.Fatalf("hello: %+v %v", h, err)
	}
	if c, err := parseCredit(next(frameCredit)); err != nil || c != (creditMsg{gen: 5, op: 6, inst: 7, credits: 8}) {
		t.Fatalf("credit: %+v %v", c, err)
	}
	if d, err := parseDone(next(frameDone)); err != nil || d != (doneMsg{gen: 5, op: 6}) {
		t.Fatalf("done: %+v %v", d, err)
	}
	if m, err := parseCtrl(next(frameReply)); err != nil || m.req != 44 || m.kind != 1 || string(m.body) != `{}` {
		t.Fatalf("ctrl: %+v %v", m, err)
	}
	h, rest, err := parseDataHeader(next(frameData))
	if err != nil || h.gen != 3 || h.op != 1 || h.inst != 2 || h.count != 3 {
		t.Fatalf("data header: %+v %v", h, err)
	}
	for i, want := range recs {
		key, _, val, r2, err := nextRecord(rest)
		rest = r2
		if err != nil || string(key) != want[0] || string(val) != want[1] {
			t.Fatalf("record %d: key=%q val=%q err=%v", i, key, val, err)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing bytes: %d", len(rest))
	}
}

func TestLocalSeqStriping(t *testing.T) {
	// Workers' stripes must partition [0, limit) exactly: every global
	// sequence emitted once, by exactly one worker.
	for _, tc := range []struct {
		nw    int
		block int64
		limit int64
	}{
		{2, 4, 10}, {2, 8192, 30000}, {3, 7, 100}, {3, 7, 21}, {4, 1, 13}, {1, 8192, 999},
	} {
		seen := make(map[int64]int)
		var total int64
		for w := 0; w < tc.nw; w++ {
			in := &instance{seqNW: tc.nw, seqWorker: w, seqBlock: tc.block}
			lim := localSeqLimit(tc.limit, w, tc.nw, tc.block)
			total += lim
			for c := int64(0); c < lim; c++ {
				seen[in.seqAt(c)]++
			}
		}
		if total != tc.limit {
			t.Fatalf("nw=%d block=%d limit=%d: stripes sum to %d", tc.nw, tc.block, tc.limit, total)
		}
		for s := int64(0); s < tc.limit; s++ {
			if seen[s] != 1 {
				t.Fatalf("nw=%d block=%d limit=%d: seq %d emitted %d times", tc.nw, tc.block, tc.limit, s, seen[s])
			}
		}
		if int64(len(seen)) != tc.limit {
			t.Fatalf("nw=%d block=%d limit=%d: %d distinct seqs outside range", tc.nw, tc.block, tc.limit, len(seen))
		}
	}
}
