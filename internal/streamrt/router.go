package streamrt

import "sort"

// router decides which instance of a keyed operator owns each key for
// one deployment generation. The exchange (emit) and keyed-state
// repartitioning share one router per operator, so a key's records and
// its state always agree on the owner.
//
// Keys the job has already seen — present in the rescale snapshot —
// are striped over the instances by a deployment-time routing table:
// sorted for determinism and dealt out by largest-remainder quotas
// from the (optionally weighted) instance shares. That keeps a small
// hot universe balanced exactly — 100 auctions over 3 instances split
// 34/33/33 — where hashing mod n would saturate the luckiest shard
// well before the mean. Keys never seen before fall back to rendezvous
// (highest-random-weight) hashing: deterministic within a deployment,
// and at most ~1/n of fallback keys change owner when n changes.
type router struct {
	n     int
	table map[string]int
}

// buildRouter stripes the known key universe over n instances.
// weights (from Config.PartitionWeights) skews the shares; a nil,
// wrong-length, or non-positive entry means equal shares.
func buildRouter(known map[string]any, n int, weights []float64) *router {
	r := &router{n: n}
	if n <= 1 || len(known) == 0 {
		return r
	}
	keys := make([]string, 0, len(known))
	for k := range known {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	quota := quotas(len(keys), n, weights)
	r.table = make(map[string]int, len(keys))
	inst := 0
	for _, k := range keys {
		for inst < n-1 && quota[inst] == 0 {
			inst++
		}
		r.table[k] = inst
		quota[inst]--
	}
	return r
}

// routerFromTable wraps a routing table the coordinator of a
// distributed deployment built (with buildRouter over the merged key
// universe) and shipped to every worker — each process must route from
// the identical table, not from one rebuilt over its partial state.
func routerFromTable(table map[string]int, n int) *router {
	return &router{n: n, table: table}
}

// owner returns the instance index owning key.
func (r *router) owner(key string) int {
	if r.n <= 1 {
		return 0
	}
	if t, ok := r.table[key]; ok {
		return t
	}
	return rendezvousOwner(key, r.n)
}

// quotas splits total keys into n integer shares proportional to
// weights, exactly summing to total (largest-remainder apportionment;
// ties break toward lower instance indices).
func quotas(total, n int, weights []float64) []int {
	w := make([]float64, n)
	sum := 0.0
	ok := len(weights) == n
	if ok {
		for i, x := range weights {
			if x <= 0 {
				ok = false
				break
			}
			w[i] = x
			sum += x
		}
	}
	if !ok {
		for i := range w {
			w[i] = 1
		}
		sum = float64(n)
	}
	out := make([]int, n)
	type rem struct {
		i int
		f float64
	}
	rems := make([]rem, n)
	assigned := 0
	for i := range w {
		exact := float64(total) * w[i] / sum
		out[i] = int(exact)
		rems[i] = rem{i, exact - float64(out[i])}
		assigned += out[i]
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].f != rems[b].f {
			return rems[a].f > rems[b].f
		}
		return rems[a].i < rems[b].i
	})
	for k := 0; assigned < total; k++ {
		out[rems[k%n].i]++
		assigned++
	}
	return out
}

// rendezvousOwner picks argmax_i mix64(hash(key) ^ seed_i): alloc-free
// highest-random-weight hashing over the instance indices.
func rendezvousOwner(key string, n int) int {
	h := hashKey(key)
	best, bestScore := 0, uint64(0)
	for i := 0; i < n; i++ {
		if s := mix64(h ^ (uint64(i)+1)*0x9E3779B97F4A7C15); s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler with
// good avalanche, so per-instance scores decorrelate even for similar
// keys.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
