package streamrt

import (
	"strings"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/obs"
)

// TestJobExportsTelemetry runs a live job with the exporter attached,
// collects one interval, and pins the scrape: instance gauges match
// the deployed parallelism, every operator exposes all five §3 time
// phases as fractions in [0,1], the batch-flush counters moved, and
// the sink's sampled latency histogram recorded at least one
// observation.
func TestJobExportsTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	p := testPipeline(t, 8000, 0, 5, 1, 0, 0)
	par := dataflow.Parallelism{"src": 1, "split": 2, "count": 2}
	j, err := NewJob(p, par, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()

	if _, err := j.NextInterval(0.3); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}

	for _, s := range sc.Get("streamrt_operator_instances") {
		op := s.Label("operator")
		if int(s.Value) != par[op] {
			t.Errorf("instances{%s} = %v, want %d", op, s.Value, par[op])
		}
	}
	phases := make(map[string]map[string]bool) // operator -> phase set
	for _, s := range sc.Get("streamrt_time_fraction") {
		op, phase := s.Label("operator"), s.Label("phase")
		if s.Value < 0 || s.Value > 1 {
			t.Errorf("time_fraction{%s,%s} = %v, outside [0,1]", op, phase, s.Value)
		}
		if phases[op] == nil {
			phases[op] = make(map[string]bool)
		}
		phases[op][phase] = true
	}
	for op := range par {
		if got := len(phases[op]); got != 5 {
			t.Errorf("operator %s exposes %d time phases, want 5", op, got)
		}
	}
	var flushes, records float64
	for _, s := range sc.Get("streamrt_batch_flushes_total") {
		flushes += s.Value
	}
	for _, s := range sc.Get("streamrt_flushed_records_total") {
		records += s.Value
	}
	if flushes == 0 || records == 0 {
		t.Errorf("flush counters did not move: %v flushes, %v records", flushes, records)
	}
	if got := sc.Get("streamrt_true_rate"); len(got) == 0 {
		t.Error("no streamrt_true_rate samples")
	}
	var latCount float64
	for _, s := range sc.Get("streamrt_record_latency_seconds_count") {
		latCount += s.Value
	}
	if latCount == 0 {
		t.Error("sink latency histogram recorded no samples")
	}
}

// TestJobTelemetryAcrossRescale pins that telemetry survives a live
// redeployment: the instance gauges track the new parallelism after
// the next Collect and the rescale counter moved.
func TestJobTelemetryAcrossRescale(t *testing.T) {
	reg := obs.NewRegistry()
	p := testPipeline(t, 5000, 0, 5, 1, 0, 0)
	j, err := NewJob(p, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, Config{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Stop()

	time.Sleep(50 * time.Millisecond)
	want := dataflow.Parallelism{"src": 1, "split": 3, "count": 2}
	if err := j.Rescale(want); err != nil {
		t.Fatal(err)
	}
	if _, err := j.NextInterval(0.15); err != nil {
		t.Fatal(err)
	}

	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	sc, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sc.Get("streamrt_operator_instances") {
		op := s.Label("operator")
		if int(s.Value) != want[op] {
			t.Errorf("instances{%s} = %v after rescale, want %d", op, s.Value, want[op])
		}
	}
	rescales := sc.Get("streamrt_rescales_total")
	if len(rescales) != 1 || rescales[0].Value != 1 {
		t.Errorf("rescales_total = %v, want 1", rescales)
	}
}
