// Distributed runtime acceptance: in-process Workers over real
// loopback TCP, exercising the framed exchange, credit flow control,
// cross-process drain, and state-moving rescales. The oracle
// throughout is the single-process Job: same pipeline, same bounded
// input, byte-identical final keyed state.
package streamrt_test

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// i64Codec moves int64 values over the wire as varints.
type i64Codec struct{}

func (i64Codec) Encode(v any) []byte { return binary.AppendVarint(nil, v.(int64)) }
func (i64Codec) Decode(b []byte) any { x, _ := binary.Varint(b); return x }
func (i64Codec) AppendEncode(dst []byte, v any) []byte {
	return binary.AppendVarint(dst, v.(int64))
}

// intStateCodec moves per-key int counters across processes at rescale.
type intStateCodec struct{}

func (intStateCodec) EncodeState(v any) []byte { return binary.AppendVarint(nil, int64(v.(int))) }
func (intStateCodec) DecodeState(b []byte) any { x, _ := binary.Varint(b); return int(x) }

const distFan = 5

// distWordcountish is liveWordcountish with the codecs a distributed
// deployment requires (every exchange edge moves bytes, every keyed
// operator snapshots state as bytes) and configurable per-record costs.
func distWordcountish(t *testing.T, rate func(float64) float64, limit int64, splitCost, countCost time.Duration) *streamrt.Pipeline {
	t.Helper()
	p, err := streamrt.NewPipeline().
		AddSource("src", streamrt.SourceSpec{
			Rate:  rate,
			Next:  func(seq int64) (string, any) { return "", seq },
			Limit: limit,
		}).
		AddOperator("split", streamrt.OperatorSpec{
			Process: func(_ any, _ string, v any, emit streamrt.Emit) any {
				base := v.(int64) * distFan
				for i := int64(0); i < distFan; i++ {
					emit(fmt.Sprintf("k%02d", (base+i)%64), "w")
				}
				return nil
			},
			Cost:  splitCost,
			Codec: i64Codec{},
		}).
		AddOperator("count", streamrt.OperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, _ any, _ streamrt.Emit) any {
				c, _ := state.(int)
				return c + 1
			},
			Cost:  countCost,
			Codec: streamrt.StringCodec{},
			State: intStateCodec{},
		}).
		AddEdge("src", "split").
		AddEdge("split", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// startWorkers launches n in-process Workers on loopback TCP and
// returns their control addresses.
func startWorkers(t *testing.T, n int, pipes map[string]*streamrt.Pipeline) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		w := streamrt.NewWorker(i, pipes, nil)
		addr, err := w.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(w.Close)
		addrs[i] = addr
	}
	return addrs
}

// expectedCounts replays the wordcount arithmetic: the exact final
// keyed state any correct execution — local or distributed, rescaled
// or not — must produce for a bounded input.
func expectedCounts(limit int64) map[string]any {
	m := make(map[string]any)
	for seq := int64(0); seq < limit; seq++ {
		base := seq * distFan
		for i := int64(0); i < distFan; i++ {
			k := fmt.Sprintf("k%02d", (base+i)%64)
			c, _ := m[k].(int)
			m[k] = c + 1
		}
	}
	return m
}

func TestClusterMatchesLocalJobExactly(t *testing.T) {
	const limit = 20000
	unbounded := func(float64) float64 { return 1e12 }
	par := dataflow.Parallelism{"src": 1, "split": 2, "count": 2}

	local := distWordcountish(t, unbounded, limit, 0, 0)
	job, err := streamrt.NewJob(local, par, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	job.Wait()
	want := job.Stop()

	if !reflect.DeepEqual(want["count"], expectedCounts(limit)) {
		t.Fatalf("local job diverged from the replay oracle")
	}

	pipe := distWordcountish(t, unbounded, limit, 0, 0)
	addrs := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc", par, addrs, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Wait()

	// Collect once before stopping so link counters are mirrored.
	if _, err := cluster.Collect(); err != nil {
		t.Fatalf("collect: %v", err)
	}
	got := cluster.Stop()

	if !reflect.DeepEqual(got, want) {
		t.Fatalf("distributed final state diverged from local job:\n got: %v\nwant: %v", got, want)
	}

	// The exchange genuinely crossed processes: some link moved bytes.
	var bytes, frames uint64
	for _, l := range cluster.LinkTotals() {
		bytes += l.TxBytes + l.RxBytes
		frames += l.TxFrames + l.RxFrames
	}
	if bytes == 0 || frames == 0 {
		t.Fatalf("no traffic on worker-to-worker links: bytes=%d frames=%d", bytes, frames)
	}
}

func TestClusterRescaleMigratesState(t *testing.T) {
	const (
		limit = 6000
		rate  = 8000.0
	)
	pipe := distWordcountish(t, func(float64) float64 { return rate }, limit, 0, 0)
	addrs := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc",
		dataflow.Parallelism{"src": 1, "split": 2, "count": 2}, addrs,
		streamrt.Config{SourceSeqBlock: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// Rescale mid-stream, twice: counts accumulated before each rescale
	// must survive the drain → encode → re-route → decode round trip,
	// with ownership moving between worker processes both times.
	time.Sleep(250 * time.Millisecond)
	if err := cluster.Rescale(dataflow.Parallelism{"src": 1, "split": 3, "count": 4}); err != nil {
		t.Fatalf("rescale up: %v", err)
	}
	time.Sleep(250 * time.Millisecond)
	if err := cluster.Rescale(dataflow.Parallelism{"src": 1, "split": 1, "count": 3}); err != nil {
		t.Fatalf("rescale down: %v", err)
	}
	if got := cluster.Rescales(); got != 2 {
		t.Fatalf("rescales = %d, want 2", got)
	}

	cluster.Wait()
	got := cluster.Stop()
	if want := expectedCounts(limit); !reflect.DeepEqual(got["count"], want) {
		t.Fatalf("post-rescale counts diverged from the replay oracle:\n got: %v\nwant: %v", got["count"], want)
	}
}

// TestDS2ConvergesOnClusterWithinThreeIntervals is the distributed twin
// of the single-process convergence pin: the same wordcountish job with
// its instances spread over two worker processes, driven by the same
// Controller through the Engine seam, must converge to the same
// provisioning within three policy intervals of the rate step.
func TestDS2ConvergesOnClusterWithinThreeIntervals(t *testing.T) {
	const (
		interval  = 0.2
		stepAt    = 0.8
		rateLow   = 100.0
		rateHigh  = 400.0
		intervals = 14
	)
	rate := func(tm float64) float64 {
		if tm >= stepAt {
			return rateHigh
		}
		return rateLow
	}
	pipe := distWordcountish(t, rate, 0, 4*time.Millisecond, 1200*time.Microsecond)
	initial := dataflow.Parallelism{"src": 1, "split": 1, "count": 1}
	addrs := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc", initial, addrs, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	defer cluster.Stop()

	ctrl, err := controlloop.New(streamrt.NewEngineRuntime(cluster),
		liveManager(t, pipe.Graph(), initial),
		controlloop.Config{Interval: interval, MaxIntervals: intervals})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ctrl.Run()
	if err != nil {
		t.Fatalf("controller: %v\n%s", err, tr)
	}

	want := dataflow.Parallelism{"src": 1, "split": 2, "count": 3}
	if !tr.Final.Equal(want) {
		t.Fatalf("final = %s, want %s\n%s", tr.Final, want, tr)
	}

	firstStep, lastAction := -1, -1
	for i, iv := range tr.Intervals {
		if firstStep < 0 && iv.Target > rateLow*1.5 {
			firstStep = i
		}
		if iv.Action != "" {
			lastAction = i
		}
	}
	if firstStep < 0 {
		t.Fatalf("step change never observed\n%s", tr)
	}
	if lastAction < 0 || lastAction > firstStep+2 {
		t.Fatalf("last action at interval %d, want within 3 intervals of step at %d\n%s",
			lastAction, firstStep, tr)
	}
	// The converged deployment spans both workers.
	if total := want.Total(); total < 2 {
		t.Fatalf("converged total %d cannot span two workers", total)
	}
}
