// Savepoint file-format hardening: the binary codec roundtrips, every
// corruption class fails with a clean field-naming error (never a
// panic or a silent partial parse), and the stores publish atomically.
package streamrt

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleSavepoint() *savepointData {
	return &savepointData{
		Workload: "wc",
		Workers:  2,
		SeqBlock: 1024,
		Elapsed:  3.5,
		Seqs: map[string][]int64{
			"src":   {4096, 2048},
			"ticks": {17},
		},
		States: map[string]map[string][]byte{
			"count": {"k00": {1, 2, 3}, "k01": {7}, "k02": {0xFF}},
			"join":  {},
		},
	}
}

func TestSavepointRoundtrip(t *testing.T) {
	sp := sampleSavepoint()
	data := encodeSavepoint(sp)
	got, err := decodeSavepoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sp) {
		t.Fatalf("roundtrip diverged:\n got: %+v\nwant: %+v", got, sp)
	}
	// Map-order independence: identical snapshots must produce
	// identical bytes (the deterministic-savepoint guarantee).
	if !bytes.Equal(data, encodeSavepoint(sampleSavepoint())) {
		t.Fatal("two encodings of the same snapshot differ")
	}
}

// refixCRC recomputes the trailing checksum after a deliberate body
// mutation, so the test reaches the structural parser behind it.
func refixCRC(data []byte) []byte {
	body := data[:len(data)-4]
	return binary.BigEndian.AppendUint32(body[:len(body):len(body)], crc32.ChecksumIEEE(body))
}

func TestSavepointDecodeRejectsCorruption(t *testing.T) {
	valid := encodeSavepoint(sampleSavepoint())
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "shorter than the smallest savepoint"},
		{"truncated header", valid[:8], "shorter than the smallest savepoint"},
		{"truncated body", valid[:len(valid)-5], "checksum mismatch"},
		{"bit flip", func() []byte {
			d := append([]byte(nil), valid...)
			d[len(d)/2] ^= 0x40
			return d
		}(), "checksum mismatch"},
		{"bad magic", func() []byte {
			d := append([]byte(nil), valid...)
			d[0] = 'X'
			return d
		}(), "bad magic"},
		{"version skew", func() []byte {
			d := append([]byte(nil), valid...)
			binary.BigEndian.PutUint16(d[8:10], savepointVersion+1)
			return refixCRC(d)
		}(), "format version 2; this build reads version 1"},
		{"trailing bytes", refixCRC(append(append([]byte(nil), valid[:len(valid)-4]...), 0, 0, 0, 0xAA, 0xBB, 0xCC, 0xDD)), "trailing bytes"},
		{"oversized count", func() []byte {
			// Workload "", 1 worker, block 1, elapsed 0, then a source
			// count far beyond the file's remaining bytes.
			d := append([]byte(nil), savepointMagic[:]...)
			d = binary.BigEndian.AppendUint16(d, savepointVersion)
			d = binary.AppendUvarint(d, 0)          // workload ""
			d = binary.AppendUvarint(d, 1)          // workers
			d = binary.AppendUvarint(d, 1)          // seqBlock
			d = binary.BigEndian.AppendUint64(d, 0) // elapsed
			d = binary.AppendUvarint(d, 1<<40)      // absurd source count
			return binary.BigEndian.AppendUint32(d, crc32.ChecksumIEEE(d))
		}(), "exceeds the"},
		{"zero workers", func() []byte {
			sp := sampleSavepoint()
			sp.Workers = 0
			return refixCRC(encodeSavepoint(sp))
		}(), "worker count 0 outside [1, 65535]"},
		{"negative counter", func() []byte {
			sp := sampleSavepoint()
			sp.Seqs = map[string][]int64{"src": {-3}}
			sp.Workers = 1
			return refixCRC(encodeSavepoint(sp))
		}(), `source "src" rank 0 counter -3 is negative`},
		{"rank overflow", func() []byte {
			sp := sampleSavepoint()
			sp.Workers = 1 // fewer workers than src's two seq ranks
			return refixCRC(encodeSavepoint(sp))
		}(), `source "src" has 2 seq ranks for 1 workers`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp, err := decodeSavepoint(tc.data)
			if err == nil {
				t.Fatalf("decode accepted corrupt input: %+v", sp)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("decode error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func FuzzSavepointDecode(f *testing.F) {
	f.Add(encodeSavepoint(sampleSavepoint()))
	f.Add(encodeSavepoint(&savepointData{
		Workers: 1, SeqBlock: 1,
		Seqs:   map[string][]int64{"s": {0}},
		States: map[string]map[string][]byte{},
	}))
	valid := encodeSavepoint(sampleSavepoint())
	f.Add(valid[:len(valid)-6])
	f.Add(refixCRC(append(append([]byte(nil), valid[:len(valid)-4]...), 0x01)))
	for _, cut := range []int{0, 1, 9, 11} {
		f.Add(valid[:cut])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Total: any input either decodes or errors — never panics.
		sp, err := decodeSavepoint(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode canonically and survive a
		// second decode unchanged.
		again, err := decodeSavepoint(encodeSavepoint(sp))
		if err != nil {
			t.Fatalf("re-encode of an accepted savepoint failed to decode: %v", err)
		}
		if !reflect.DeepEqual(again, sp) {
			t.Fatalf("re-encode roundtrip diverged:\n got: %+v\nwant: %+v", again, sp)
		}
	})
}

func TestMemoryStore(t *testing.T) {
	s := NewMemoryStore()
	if _, err := s.Load("nope"); err == nil {
		t.Fatal("Load of a missing savepoint succeeded")
	}
	if err := s.Save("a", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("a")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1, 2}) {
		t.Fatalf("Load returned %v", got)
	}
	// The store must hold its own copy, immune to caller mutation.
	got[0] = 9
	if again, _ := s.Load("a"); !bytes.Equal(again, []byte{1, 2}) {
		t.Fatal("store aliases the caller's buffer")
	}
}

func TestDirStore(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDirStore(filepath.Join(dir, "nested", "sp"))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "a/b", "../esc"} {
		if err := s.Save(bad, []byte{1}); err == nil || !strings.Contains(err.Error(), "bare file name") {
			t.Fatalf("Save(%q) error = %v, want bare-name rejection", bad, err)
		}
		if _, err := s.Load(bad); err == nil {
			t.Fatalf("Load(%q) succeeded", bad)
		}
	}
	if err := s.Save("sp-1", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("sp-1", []byte("v2")); err != nil { // overwrite = atomic republish
		t.Fatal(err)
	}
	got, err := s.Load("sp-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("Load returned %q, want %q", got, "v2")
	}
	// No temp-file litter after successful publishes.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}
