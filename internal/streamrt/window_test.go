package streamrt_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// windowedCountPipeline builds source → windowed per-key counter →
// keyed sink. The source emits `limit` records round-robin over `keys`
// keys at `rate` records/s; the windowed operator counts records per
// key per pane and fires the count; the sink accumulates fired counts
// per key. Conservation (sink totals + residual panes == records per
// key) is therefore an exactly-once pin on the whole window path.
func windowedCountPipeline(t *testing.T, rate float64, limit int64, keys int, win streamrt.WindowSpec) *streamrt.Pipeline {
	t.Helper()
	win.Fire = func(key string, agg any, emit streamrt.Emit) {
		emit(key, agg.(int))
	}
	p, err := streamrt.NewPipeline().
		AddSource("src", streamrt.SourceSpec{
			Rate:  func(float64) float64 { return rate },
			Next:  func(seq int64) (string, any) { return fmt.Sprintf("k%02d", seq%int64(keys)), 1 },
			Limit: limit,
		}).
		AddOperator("window", streamrt.OperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, _ any, _ streamrt.Emit) any {
				c, _ := state.(int)
				return c + 1
			},
			Window: &win,
		}).
		AddOperator("sink", streamrt.OperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, v any, _ streamrt.Emit) any {
				c, _ := state.(int)
				return c + v.(int)
			},
		}).
		AddEdge("src", "window").
		AddEdge("window", "sink").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// windowConservation sums fired (sink) plus residual (open panes)
// counts per key from a stopped job's final states.
func windowConservation(t *testing.T, states map[string]map[string]any) map[string]int {
	t.Helper()
	total := make(map[string]int)
	for key, st := range states["sink"] {
		total[key] += st.(int)
	}
	for key, st := range states["window"] {
		ws, ok := st.(*streamrt.WindowState)
		if !ok {
			t.Fatalf("window state for %s is %T, want *WindowState", key, st)
		}
		for _, agg := range ws.Panes {
			total[key] += agg.(int)
		}
	}
	return total
}

// TestTumblingWindowFiresExactlyOnce: a bounded stream through a small
// tumbling window must fire every closed pane exactly once — fired
// counts at the sink plus residual open panes add up to the exact
// per-key record totals, and at least one window actually fired
// mid-run.
func TestTumblingWindowFiresExactlyOnce(t *testing.T) {
	const (
		limit = 600
		keys  = 8
	)
	p := windowedCountPipeline(t, 3000, limit, keys, streamrt.WindowSpec{Size: 40 * time.Millisecond})
	j, err := streamrt.NewJob(p, dataflow.Parallelism{"src": 1, "window": 2, "sink": 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	states := j.Stop()

	fired := 0
	for _, st := range states["sink"] {
		fired += st.(int)
	}
	if fired == 0 {
		t.Fatal("no window ever fired")
	}
	total := windowConservation(t, states)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%02d", k)
		if got, want := total[key], limit/keys; got != want {
			t.Errorf("key %s: fired+residual = %d, want %d", key, got, want)
		}
	}
}

// TestSlidingWindowCombines: with size = 3×slide every record
// contributes to up to three fired windows, folded by Combine. The
// per-window fire is the pane-order sum, so total fired mass is
// bounded by 3× the record count and the residual panes still hold
// each record exactly once.
func TestSlidingWindowCombines(t *testing.T) {
	const limit = 400
	win := streamrt.WindowSpec{
		Size:    60 * time.Millisecond,
		Slide:   20 * time.Millisecond,
		Combine: func(a, b any) any { return a.(int) + b.(int) },
	}
	p := windowedCountPipeline(t, 3000, limit, 4, win)
	j, err := streamrt.NewJob(p, dataflow.Parallelism{"src": 1, "window": 1, "sink": 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	j.Wait()
	states := j.Stop()

	fired := 0
	for _, st := range states["sink"] {
		fired += st.(int)
	}
	if fired == 0 {
		t.Fatal("no sliding window ever fired")
	}
	if fired > 3*limit {
		t.Fatalf("fired mass %d exceeds 3x the %d records — a pane fired into more than 3 windows", fired, limit)
	}
	// Residual panes hold each not-yet-retired record at most once per
	// pane; total mass across sink and panes is bounded by 3x records
	// (each record in at most 3 windows) and at least the record count
	// (each record fires at least once or is still buffered).
	total := 0
	for _, n := range windowConservation(t, states) {
		total += n
	}
	if total < limit {
		t.Fatalf("fired+residual mass %d lost records (want >= %d)", total, limit)
	}
}

// TestWindowStateSurvivesConcurrentRescale is the -race pin for the
// windowed snapshot/repartition path: a windowed job rescaled
// repeatedly while records flow and windows fire must neither lose nor
// duplicate a single record — fired plus residual counts stay exact.
func TestWindowStateSurvivesConcurrentRescale(t *testing.T) {
	const (
		limit = 900
		keys  = 8
	)
	p := windowedCountPipeline(t, 4000, limit, keys, streamrt.WindowSpec{Size: 30 * time.Millisecond})
	j, err := streamrt.NewJob(p, dataflow.Parallelism{"src": 1, "window": 1, "sink": 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}

	configs := []dataflow.Parallelism{
		{"src": 1, "window": 3, "sink": 2},
		{"src": 1, "window": 2, "sink": 1},
		{"src": 1, "window": 4, "sink": 2},
		{"src": 1, "window": 1, "sink": 1},
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for _, cfg := range configs {
			time.Sleep(35 * time.Millisecond)
			if err := j.Rescale(cfg); err != nil {
				t.Errorf("rescale to %s: %v", cfg, err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// Concurrent observation exercises Collect against the rescale
		// path under -race.
		for i := 0; i < 6; i++ {
			time.Sleep(30 * time.Millisecond)
			if _, err := j.Collect(); err != nil {
				t.Errorf("collect: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	j.Wait()
	states := j.Stop()

	total := windowConservation(t, states)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%02d", k)
		want := limit / keys
		if k < limit%keys {
			want++
		}
		if got := total[key]; got != want {
			t.Errorf("key %s: fired+residual = %d across %d rescales, want %d", key, got, len(configs), want)
		}
	}
	if j.Rescales() != len(configs) {
		t.Fatalf("job performed %d rescales, want %d", j.Rescales(), len(configs))
	}
}

// TestWindowSpecValidation pins the builder's windowed-operator
// invariants.
func TestWindowSpecValidation(t *testing.T) {
	count := func(state any, _ string, _ any, _ streamrt.Emit) any {
		c, _ := state.(int)
		return c + 1
	}
	fire := func(string, any, streamrt.Emit) {}
	cases := []struct {
		name string
		spec streamrt.OperatorSpec
		want string
	}{
		{"unkeyed", streamrt.OperatorSpec{Process: count,
			Window: &streamrt.WindowSpec{Size: time.Second, Fire: fire}}, "must be keyed"},
		{"no-size", streamrt.OperatorSpec{Keyed: true, Process: count,
			Window: &streamrt.WindowSpec{Fire: fire}}, "size"},
		{"slide-over-size", streamrt.OperatorSpec{Keyed: true, Process: count,
			Window: &streamrt.WindowSpec{Size: time.Second, Slide: 2 * time.Second, Fire: fire}}, "slide"},
		{"ragged", streamrt.OperatorSpec{Keyed: true, Process: count,
			Window: &streamrt.WindowSpec{Size: time.Second, Slide: 300 * time.Millisecond, Fire: fire}}, "multiple"},
		{"no-fire", streamrt.OperatorSpec{Keyed: true, Process: count,
			Window: &streamrt.WindowSpec{Size: time.Second}}, "Fire"},
		{"no-combine", streamrt.OperatorSpec{Keyed: true, Process: count,
			Window: &streamrt.WindowSpec{Size: time.Second, Slide: 500 * time.Millisecond, Fire: fire}}, "Combine"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := streamrt.NewPipeline().
				AddSource("src", streamrt.SourceSpec{
					Rate: func(float64) float64 { return 1 },
					Next: func(seq int64) (string, any) { return "k", seq },
				}).
				AddOperator("w", tc.spec).
				AddEdge("src", "w").
				Build()
			if err == nil {
				t.Fatalf("Build accepted invalid window spec %q", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
