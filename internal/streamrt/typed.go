package streamrt

import (
	"fmt"
	"reflect"
	"time"
)

// Typed pipeline construction: the flowgraph-style generic builder
// whose Compile step validates the dataflow before anything runs. The
// typed specs below are a construction-time veneer — Compile lowers
// them onto the untyped SourceSpec/OperatorSpec representation that
// job.go/dist.go execute, so the runtime (and its zero-alloc exchange)
// is untouched. What the types buy is static and compile-step safety:
// Process/Fire/Combine signatures are checked by the Go compiler, and
// Compile walks the graph rejecting edge type mismatches, missing
// codecs on distributed deployments, and invalid window/key
// combinations — with errors that name the offending node or edge —
// before a job can start.
//
// Keys are strings runtime-wide (the router hashes them, codecs frame
// them), so the key type parameter the generic-graph idiom would carry
// is fixed rather than generic here.

// TypedEmit pushes typed records downstream from a Process or Fire
// function. It is a value struct wrapping the untyped Emit — NOT a
// closure — so handing one to a user function costs no allocation on
// the per-record hot path.
type TypedEmit[Out any] struct{ emit Emit }

// Emit pushes one record to every downstream operator (see Emit).
func (e TypedEmit[Out]) Emit(key string, value Out) { e.emit(key, value) }

// TypedSource is the typed counterpart of SourceSpec: a deterministic
// generator of V-valued records paced at a target rate. Field
// semantics are exactly SourceSpec's.
type TypedSource[V any] struct {
	Rate  func(t float64) float64
	Next  func(seq int64) (key string, value V)
	Limit int64
	Cost  time.Duration
}

// TypedWindow is the typed counterpart of WindowSpec for an operator
// whose pane aggregate has type S and whose fired results have type
// Out. Field semantics are exactly WindowSpec's.
type TypedWindow[S, Out any] struct {
	Size    time.Duration
	Slide   time.Duration
	Fire    func(key string, aggregate S, emit TypedEmit[Out])
	Combine func(earlier, later S) S
}

// TypedOperator is the typed counterpart of OperatorSpec: it consumes
// In-valued records, emits Out-valued ones, and (when Keyed) keeps
// per-key state of type S. For windowed operators S is the pane
// aggregate. Use In = any for operators that accept records of more
// than one concrete type (joins); use Out = any for operators whose
// output type genuinely varies — Compile then skips the static check
// on the affected edges.
type TypedOperator[In, Out, S any] struct {
	Keyed   bool
	Process func(state S, key string, value In, emit TypedEmit[Out]) S
	Cost    time.Duration
	Codec   Codec
	State   StateCodec
	Window  *TypedWindow[S, Out]
}

// TypedBuilder accumulates typed sources, operators and edges; Compile
// validates the whole graph and lowers it to a runnable *Pipeline. It
// wraps the untyped Builder, so every structural validation that
// applies there (window/key rules, graph shape, duplicate names)
// applies here too, with identical first-failure-wins error reporting.
type TypedBuilder struct {
	b     *Builder
	outT  map[string]reflect.Type // what each node emits
	inT   map[string]reflect.Type // what each operator consumes
	order []string                // operator insertion order, for deterministic errors
	edges [][2]string
	dist  bool
}

// NewTypedPipeline returns an empty typed pipeline builder.
func NewTypedPipeline() *TypedBuilder {
	return &TypedBuilder{
		b:    NewPipeline(),
		outT: make(map[string]reflect.Type),
		inT:  make(map[string]reflect.Type),
	}
}

// Distributed marks the pipeline as destined for a multi-process
// deployment: Compile then additionally requires a Codec on every
// operator and a StateCodec on every keyed operator, so the mistakes
// NewCluster would reject at deploy time surface at build time
// instead.
func (tb *TypedBuilder) Distributed() *TypedBuilder {
	tb.dist = true
	return tb
}

// AddEdge registers a data dependency from -> to. The endpoint types
// are checked by Compile.
func (tb *TypedBuilder) AddEdge(from, to string) *TypedBuilder {
	if tb.b.err == nil {
		tb.b.AddEdge(from, to)
		tb.edges = append(tb.edges, [2]string{from, to})
	}
	return tb
}

// typeOf returns the reflect.Type of type parameter T (works for
// interface types too, where reflect.TypeOf a value would not).
func typeOf[T any]() reflect.Type { return reflect.TypeOf((*T)(nil)).Elem() }

// AddTypedSource registers a typed source. (A package-level function —
// methods cannot introduce type parameters.)
func AddTypedSource[V any](tb *TypedBuilder, name string, spec TypedSource[V]) *TypedBuilder {
	if tb.b.err != nil {
		return tb
	}
	s := SourceSpec{Rate: spec.Rate, Limit: spec.Limit, Cost: spec.Cost}
	if next := spec.Next; next != nil {
		s.Next = func(seq int64) (string, any) {
			k, v := next(seq)
			return k, v
		}
	}
	tb.b.AddSource(name, s)
	tb.outT[name] = typeOf[V]()
	return tb
}

// AddTypedOperator registers a typed operator, lowering its Process,
// Fire and Combine onto the untyped spec. The wrappers are built once
// here; per record they cost the same interface boxing the untyped
// builder's user functions already pay, keeping the hot path
// allocation-free.
func AddTypedOperator[In, Out, S any](tb *TypedBuilder, name string, spec TypedOperator[In, Out, S]) *TypedBuilder {
	if tb.b.err != nil {
		return tb
	}
	o := OperatorSpec{Keyed: spec.Keyed, Cost: spec.Cost, Codec: spec.Codec, State: spec.State}
	if proc := spec.Process; proc != nil {
		o.Process = func(state any, key string, value any, emit Emit) any {
			var s S
			if state != nil {
				s = state.(S)
			}
			return proc(s, key, value.(In), TypedEmit[Out]{emit})
		}
	}
	if w := spec.Window; w != nil {
		ws := &WindowSpec{Size: w.Size, Slide: w.Slide}
		if fire := w.Fire; fire != nil {
			ws.Fire = func(key string, aggregate any, emit Emit) {
				var s S
				if aggregate != nil {
					s = aggregate.(S)
				}
				fire(key, s, TypedEmit[Out]{emit})
			}
		}
		if comb := w.Combine; comb != nil {
			ws.Combine = func(earlier, later any) any {
				var a, b S
				if earlier != nil {
					a = earlier.(S)
				}
				if later != nil {
					b = later.(S)
				}
				return comb(a, b)
			}
		}
		o.Window = ws
	}
	tb.b.AddOperator(name, o)
	tb.inT[name] = typeOf[In]()
	tb.outT[name] = typeOf[Out]()
	tb.order = append(tb.order, name)
	return tb
}

// edgeAssignable reports whether records of type out may flow into an
// operator consuming in. An interface `in` (any included) accepts
// every out that implements it — reflect's AssignableTo. An interface
// `out` (an operator declared Out = any) defeats the static check, so
// those edges pass here and fail at runtime if the dynamic value
// disappoints, exactly as under the untyped builder.
func edgeAssignable(out, in reflect.Type) bool {
	if out.Kind() == reflect.Interface {
		return true
	}
	return out.AssignableTo(in)
}

// Compile validates the accumulated graph — the untyped Builder's
// structural rules, then each edge's type compatibility, then (for
// Distributed pipelines) codec completeness — and lowers it to a
// frozen, runnable *Pipeline. Every rejection names the offending node
// or edge.
func (tb *TypedBuilder) Compile() (*Pipeline, error) {
	if tb.b.err != nil {
		return nil, tb.b.err
	}
	for _, e := range tb.edges {
		out, okOut := tb.outT[e[0]]
		in, okIn := tb.inT[e[1]]
		if !okOut || !okIn {
			// The endpoint was added through the untyped escape hatch
			// (or is a source used as a target — the graph build below
			// rejects that); no type to check.
			continue
		}
		if !edgeAssignable(out, in) {
			return nil, fmt.Errorf("streamrt: edge %s -> %s: %s emits %s but %s consumes %s",
				e[0], e[1], e[0], out, e[1], in)
		}
	}
	if tb.dist {
		for _, name := range tb.order {
			spec := tb.b.ops[name]
			if spec.Codec == nil {
				return nil, fmt.Errorf("streamrt: distributed operator %q has no Codec; the exchange moves bytes", name)
			}
			if spec.Keyed && spec.State == nil {
				return nil, fmt.Errorf("streamrt: distributed keyed operator %q has no StateCodec; rescales and savepoints move state as bytes", name)
			}
		}
	}
	return tb.b.Build()
}
