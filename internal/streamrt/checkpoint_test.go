// Durable-savepoint acceptance: a job savepointed mid-stream, killed,
// and restored — at a different parallelism — produces exactly the
// replay oracle's final state, single-process and across a 2-worker
// cluster. Plus the failure-path contracts: savepoints fail cleanly
// before draining when state cannot encode, and a failed persist never
// leaves the job down.
package streamrt_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"ds2/internal/dataflow"
	"ds2/internal/streamrt"
)

// waitForProgress polls until the savepointed stream is demonstrably
// mid-flight — some records processed, nowhere near the bound.
func waitForProgress(t *testing.T, iv func(float64) (streamrt.Interval, error)) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		obs, err := iv(0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range obs.SourceObserved {
			if r > 0 {
				return
			}
		}
	}
	t.Fatal("source produced nothing within 10s")
}

func TestJobSavepointRestoreAtDifferentParallelism(t *testing.T) {
	const limit = 8000
	// ~2600 records/s against an 8000-record bound: the savepoint below
	// lands mid-stream with wide margin.
	rate := func(float64) float64 { return 2600 }

	pipe := distWordcountish(t, rate, limit, 0, 0)
	job, err := streamrt.NewJob(pipe, dataflow.Parallelism{"src": 1, "split": 2, "count": 2}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, job.NextInterval)

	store := streamrt.NewMemoryStore()
	if err := job.Savepoint(store, "cut"); err != nil {
		t.Fatal(err)
	}
	// Kill: whatever the first incarnation did after the cut is lost.
	job.Stop()

	restored, err := streamrt.NewJobFromSavepoint(distWordcountish(t, rate, limit, 0, 0),
		dataflow.Parallelism{"src": 1, "split": 1, "count": 3}, // different shape than the cut
		streamrt.Config{}, store, "cut")
	if err != nil {
		t.Fatal(err)
	}
	restored.Wait()
	got := restored.Stop()
	if !reflect.DeepEqual(got["count"], expectedCounts(limit)) {
		t.Fatalf("restored run diverged from the replay oracle:\n got: %v\nwant: %v", got["count"], expectedCounts(limit))
	}
}

func TestClusterSavepointRestoreExactness(t *testing.T) {
	const limit = 8000
	rate := func(float64) float64 { return 2600 }

	pipe := distWordcountish(t, rate, limit, 0, 0)
	addrs := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc",
		dataflow.Parallelism{"src": 1, "split": 2, "count": 2}, addrs, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, cluster.NextInterval)

	store, err := streamrt.NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Savepoint(store, "cut"); err != nil {
		t.Fatal(err)
	}
	cluster.Stop()
	cluster.Close()

	// Restore over a FRESH worker fleet at a different operator
	// parallelism (source hosting stays at one worker, so sequence
	// stripes line up).
	pipe2 := distWordcountish(t, rate, limit, 0, 0)
	addrs2 := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe2})
	restored, err := streamrt.NewClusterFromSavepoint(pipe2, "wc",
		dataflow.Parallelism{"src": 1, "split": 1, "count": 3}, addrs2, streamrt.Config{}, store, "cut")
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	restored.Wait()
	if _, err := restored.Collect(); err != nil {
		t.Fatal(err)
	}
	got := restored.Stop()
	if !reflect.DeepEqual(got["count"], expectedCounts(limit)) {
		t.Fatalf("restored cluster diverged from the replay oracle:\n got: %v\nwant: %v", got["count"], expectedCounts(limit))
	}
}

func TestClusterRestoreRejectsWorkerCountMismatch(t *testing.T) {
	const limit = 500
	rate := func(float64) float64 { return 1e12 }
	pipe := distWordcountish(t, rate, limit, 0, 0)
	addrs := startWorkers(t, 2, map[string]*streamrt.Pipeline{"wc": pipe})
	cluster, err := streamrt.NewCluster(pipe, "wc",
		dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, addrs, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	store := streamrt.NewMemoryStore()
	if err := cluster.Savepoint(store, "cut"); err != nil {
		t.Fatal(err)
	}
	cluster.Stop()

	pipe1 := distWordcountish(t, rate, limit, 0, 0)
	addrs1 := startWorkers(t, 1, map[string]*streamrt.Pipeline{"wc": pipe1})
	_, err = streamrt.NewClusterFromSavepoint(pipe1, "wc",
		dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, addrs1, streamrt.Config{}, store, "cut")
	if err == nil || !strings.Contains(err.Error(), "savepoint was cut over 2 workers") {
		t.Fatalf("worker-count mismatch error = %v", err)
	}

	// A single-process restore of a cluster savepoint is refused too.
	_, err = streamrt.NewJobFromSavepoint(pipe1, dataflow.Parallelism{"src": 1, "split": 1, "count": 1},
		streamrt.Config{}, store, "cut")
	if err == nil || !strings.Contains(err.Error(), "NewClusterFromSavepoint") {
		t.Fatalf("cross-shape restore error = %v", err)
	}
}

func TestSavepointRequiresStateCodec(t *testing.T) {
	// liveWordcountish's counter has no StateCodec: the savepoint must
	// refuse before draining anything, naming the operator.
	pipe := liveWordcountish(t, func(float64) float64 { return 100 })
	job, err := streamrt.NewJob(pipe, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()
	err = job.Savepoint(streamrt.NewMemoryStore(), "cut")
	if err == nil || !strings.Contains(err.Error(), `keyed operator "count" has no StateCodec`) {
		t.Fatalf("Savepoint error = %v", err)
	}
}

// brokenStore fails every Save — the disk-full scenario.
type brokenStore struct{}

func (brokenStore) Save(string, []byte) error   { return errors.New("disk full") }
func (brokenStore) Load(string) ([]byte, error) { return nil, errors.New("disk full") }

func TestSavepointPersistFailureKeepsJobRunning(t *testing.T) {
	const limit = 3000
	pipe := distWordcountish(t, func(float64) float64 { return 2600 }, limit, 0, 0)
	job, err := streamrt.NewJob(pipe, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	waitForProgress(t, job.NextInterval)
	if err := job.Savepoint(brokenStore{}, "cut"); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Savepoint error = %v, want the store failure", err)
	}
	// The failed persist must not have left the job drained: it runs to
	// the bound and the final counts are exact.
	job.Wait()
	got := job.Stop()
	if !reflect.DeepEqual(got["count"], expectedCounts(limit)) {
		t.Fatalf("post-failure run diverged from the replay oracle:\n got: %v\nwant: %v", got["count"], expectedCounts(limit))
	}
}

func TestRestoreRejectsForeignPipeline(t *testing.T) {
	const limit = 500
	pipe := distWordcountish(t, func(float64) float64 { return 1e12 }, limit, 0, 0)
	job, err := streamrt.NewJob(pipe, dataflow.Parallelism{"src": 1, "split": 1, "count": 1}, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	store := streamrt.NewMemoryStore()
	if err := job.Savepoint(store, "cut"); err != nil {
		t.Fatal(err)
	}
	job.Stop()

	// A pipeline whose source has a different name cannot consume it.
	other, err := streamrt.NewPipeline().
		AddSource("ticks", streamrt.SourceSpec{
			Rate: func(float64) float64 { return 1 },
			Next: func(seq int64) (string, any) { return "", seq },
		}).
		AddOperator("count", streamrt.OperatorSpec{
			Keyed: true,
			Process: func(state any, _ string, _ any, _ streamrt.Emit) any {
				c, _ := state.(int)
				return c + 1
			},
			State: streamrt.IntStateCodec{},
		}).
		AddEdge("ticks", "count").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = streamrt.NewJobFromSavepoint(other, dataflow.Parallelism{"ticks": 1, "count": 1},
		streamrt.Config{}, store, "cut")
	if err == nil || !strings.Contains(err.Error(), `no sequence counter for source "ticks"`) {
		t.Fatalf("foreign-pipeline restore error = %v", err)
	}
}
