package streamrt

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Keyed state crosses process boundaries during distributed rescales as
// bytes: each key's value is encoded with the operator's StateCodec.
// Windowed operators store a *WindowState per key — NextFire plus the
// open panes — so the runtime wraps the codec: pane indices are sorted
// into the encoding (map order must not leak into bytes; the rescale
// oracle tests compare state byte-for-byte across placements) and each
// pane aggregate goes through the user codec.
//
//	plain    := user bytes
//	windowed := varint nextFire | uvarint numPanes |
//	            numPanes×(varint paneIdx | uvarint len | user bytes)

// encodeOpState serializes one key's state value for the wire.
func encodeOpState(spec *OperatorSpec, v any) ([]byte, error) {
	if spec.Window == nil {
		return spec.State.EncodeState(v), nil
	}
	ws, ok := v.(*WindowState)
	if !ok {
		return nil, fmt.Errorf("streamrt: windowed state is %T, not *WindowState", v)
	}
	buf := binary.AppendVarint(nil, ws.NextFire)
	buf = binary.AppendUvarint(buf, uint64(len(ws.Panes)))
	idxs := make([]int64, 0, len(ws.Panes))
	for i := range ws.Panes {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	for _, i := range idxs {
		buf = binary.AppendVarint(buf, i)
		enc := spec.State.EncodeState(ws.Panes[i])
		buf = binary.AppendUvarint(buf, uint64(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// decodeOpState is the inverse of encodeOpState.
func decodeOpState(spec *OperatorSpec, b []byte) (any, error) {
	if spec.Window == nil {
		return spec.State.DecodeState(b), nil
	}
	nextFire, n := binary.Varint(b)
	if n <= 0 {
		return nil, fmt.Errorf("streamrt: corrupt window state: nextFire")
	}
	b = b[n:]
	numPanes, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("streamrt: corrupt window state: pane count")
	}
	b = b[n:]
	ws := &WindowState{NextFire: nextFire, Panes: make(map[int64]any, numPanes)}
	for p := uint64(0); p < numPanes; p++ {
		idx, n := binary.Varint(b)
		if n <= 0 {
			return nil, fmt.Errorf("streamrt: corrupt window state: pane index")
		}
		b = b[n:]
		plen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < plen {
			return nil, fmt.Errorf("streamrt: corrupt window state: pane length")
		}
		b = b[n:]
		ws.Panes[idx] = spec.State.DecodeState(b[:plen])
		b = b[plen:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("streamrt: corrupt window state: %d trailing bytes", len(b))
	}
	return ws, nil
}
