package streamrt_test

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/service"
	"ds2/internal/streamrt"
)

// parityManagerConfig is the manager tuning both parity runs share.
// ActivationIntervals 2 is the flake fix: under -race on a loaded
// box, one ~100ms scheduler stall dents a single interval's achieved
// rate, and with activation 1 whichever run caught the stall issued an
// extra decision — the sequences diverged. Requiring two consecutive
// intervals to propose a change filters single-interval transients in
// BOTH runs (§4.2.2), while a genuine rate step still converges — one
// interval later.
var parityManagerConfig = core.ManagerConfig{
	TargetRateRatio:     0.8,
	ActivationIntervals: 2,
}

// parityManager builds the in-process twin of the service-side manager
// the parity test configures through service.ManagerConfig.
func parityManager(t *testing.T, g *dataflow.Graph, initial dataflow.Parallelism) controlloop.Autoscaler {
	t.Helper()
	pol, err := core.NewPolicy(g, core.PolicyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := core.NewManager(pol, initial, parityManagerConfig)
	if err != nil {
		t.Fatal(err)
	}
	return controlloop.DS2Autoscaler(mgr)
}

// actionSeq reduces a trace to its decision sequence — the semantics
// the parity pin compares, deliberately ignoring wall-clock timings.
func actionSeq(tr controlloop.Trace) []string {
	var out []string
	for _, iv := range tr.Intervals {
		if iv.Action != "" {
			out = append(out, fmt.Sprintf("%s -> %s", iv.Action, iv.Applied))
		}
	}
	return out
}

// TestLiveJobDS2DParity runs the identical live wordcount-ish job
// twice — once driven by the in-process Controller, once attached to a
// ds2d scaling server over real HTTP loopback through the standard
// ingestion/poll/ack API — and pins that both loops produce the same
// decision sequence and final provisioning. To the server, the live
// job is indistinguishable from a simulated one.
func TestLiveJobDS2DParity(t *testing.T) {
	const (
		interval  = 0.2
		stepAt    = 0.8
		rateLow   = 100.0
		rateHigh  = 400.0
		intervals = 12
	)
	rate := func(tm float64) float64 {
		if tm >= stepAt {
			return rateHigh
		}
		return rateLow
	}
	initial := dataflow.Parallelism{"src": 1, "split": 1, "count": 1}

	// Run 1: in-process Controller.
	p1 := liveWordcountish(t, rate)
	job1, err := streamrt.NewJob(p1, initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job1.Stop()
	ctrl, err := controlloop.New(streamrt.NewRuntime(job1), parityManager(t, p1.Graph(), initial),
		controlloop.Config{Interval: interval, MaxIntervals: intervals})
	if err != nil {
		t.Fatal(err)
	}
	trLocal, err := ctrl.Run()
	if err != nil {
		t.Fatalf("in-process run: %v\n%s", err, trLocal)
	}

	// Run 2: the same job attached to ds2d over HTTP.
	srv := service.NewServer(service.ServerConfig{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := service.NewClient(hs.URL, nil)

	p2 := liveWordcountish(t, rate)
	job2, err := streamrt.NewJob(p2, initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job2.Stop()
	spec := service.JobSpec{
		Name: "live-wordcountish",
		Operators: []service.JobOperator{
			{Name: "src"}, {Name: "split"}, {Name: "count"},
		},
		Edges:        [][2]string{{"src", "split"}, {"split", "count"}},
		Initial:      initial,
		Autoscaler:   service.AutoscalerDS2,
		IntervalSec:  interval,
		MaxIntervals: intervals,
		Manager: &service.ManagerConfig{
			TargetRateRatio:     parityManagerConfig.TargetRateRatio,
			ActivationIntervals: parityManagerConfig.ActivationIntervals,
		},
	}
	attached := streamrt.Attach(client, job2, spec)
	trRemote, err := attached.Run()
	if err != nil {
		t.Fatalf("attached run: %v\n%s", err, trRemote)
	}
	if attached.ID == "" {
		t.Fatal("attached job has no id")
	}

	// Decision-sequence parity: same actions, same applied configs,
	// same final deployment — timings excluded by construction.
	localSeq, remoteSeq := actionSeq(trLocal), actionSeq(trRemote)
	if len(localSeq) != len(remoteSeq) {
		t.Fatalf("decision sequences differ:\nlocal:  %v\nremote: %v\n%s\n%s",
			localSeq, remoteSeq, trLocal, trRemote)
	}
	for i := range localSeq {
		if localSeq[i] != remoteSeq[i] {
			t.Fatalf("decision %d differs: local %q, remote %q", i, localSeq[i], remoteSeq[i])
		}
	}
	if !trLocal.Final.Equal(trRemote.Final) {
		t.Fatalf("final configs differ: local %s, remote %s", trLocal.Final, trRemote.Final)
	}
	if trLocal.Decisions < 1 {
		t.Fatalf("no decisions in either loop\n%s", trLocal)
	}
	// The engine-side redeployments really happened on the live job.
	if job2.Rescales() != trRemote.Decisions {
		t.Fatalf("live job performed %d rescales, service decided %d",
			job2.Rescales(), trRemote.Decisions)
	}
}

// TestLiveJobShortIntervalStress pins the activation-window fix from
// the parity test at amplified noise: a steady-rate job at its optimal
// provisioning, observed over many 100ms windows — five times shorter
// than the parity test's, so every scheduler hiccup is five times
// larger relative to the window. Any single-interval transient (the
// exact mechanism behind the old parity flake) that leaks through the
// ActivationIntervals filter turns into a spurious decision and fails
// the test. Rate 100 keeps both operators at comfortable utilization
// (split at 0.4 instances' worth of load, count at 0.6), so even with
// the race detector's constant overhead no multi-interval shortfall
// can legitimately propose a change — a stalled window still can, and
// the activation filter must absorb it.
func TestLiveJobShortIntervalStress(t *testing.T) {
	const (
		interval  = 0.1
		rateConst = 100.0
		intervals = 25
	)
	p := liveWordcountish(t, func(float64) float64 { return rateConst })
	optimal := dataflow.Parallelism{"src": 1, "split": 1, "count": 1}
	job, err := streamrt.NewJob(p, optimal, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	ctrl, err := controlloop.New(streamrt.NewRuntime(job), parityManager(t, p.Graph(), optimal),
		controlloop.Config{Interval: interval, MaxIntervals: intervals})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := ctrl.Run()
	if err != nil {
		t.Fatalf("controller: %v\n%s", err, tr)
	}
	if tr.Decisions != 0 {
		t.Fatalf("steady state at the optimum produced %d decisions\n%s", tr.Decisions, tr)
	}
	if !tr.Final.Equal(optimal) {
		t.Fatalf("final = %s, want %s\n%s", tr.Final, optimal, tr)
	}
}

// TestAttachedJobStopsCleanly pins the deregistration path: stopping a
// registered live job's loop via the service leaves the engine side
// with a clean ErrStopped, not a failure.
func TestAttachedJobStopsCleanly(t *testing.T) {
	srv := service.NewServer(service.ServerConfig{})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()
	client := service.NewClient(hs.URL, nil)

	p := liveWordcountish(t, func(float64) float64 { return 50 })
	initial := dataflow.Parallelism{"src": 1, "split": 1, "count": 1}
	job, err := streamrt.NewJob(p, initial, streamrt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer job.Stop()

	spec := service.JobSpec{
		Operators:    []service.JobOperator{{Name: "src"}, {Name: "split"}, {Name: "count"}},
		Edges:        [][2]string{{"src", "split"}, {"split", "count"}},
		Initial:      initial,
		Autoscaler:   service.AutoscalerHold,
		IntervalSec:  0.1,
		MaxIntervals: 1000,
	}
	attached := streamrt.Attach(client, job, spec)
	done := make(chan error, 1)
	go func() {
		_, err := attached.Run()
		done <- err
	}()
	// Wait for registration and at least one reported interval, then
	// deregister out from under the engine.
	deadline := time.After(10 * time.Second)
	for {
		jobs, err := client.Jobs()
		if err != nil {
			t.Fatal(err)
		}
		if len(jobs) == 1 && jobs[0].Intervals >= 1 {
			if _, err := client.Deregister(jobs[0].ID); err != nil {
				t.Fatal(err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("job never reported an interval")
		case <-time.After(20 * time.Millisecond):
		}
	}
	select {
	case err := <-done:
		// The engine observes the stopped job on its next report or
		// poll and breaks cleanly; an HTTP 404 from the final trace
		// fetch of the now-deregistered job is an acceptable end, but
		// a rescale/apply failure is not.
		if err != nil && strings.Contains(err.Error(), "applying action") {
			t.Fatalf("deregistration surfaced as a rescale failure: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("attached job did not stop after deregistration")
	}
}
