package ds2

import (
	"net/http"
	"time"

	"ds2/internal/controlloop"
	"ds2/internal/core"
	"ds2/internal/dataflow"
	"ds2/internal/engine"
	"ds2/internal/metrics"
	"ds2/internal/nexmark"
	"ds2/internal/obs"
	"ds2/internal/service"
	"ds2/internal/streamrt"
	"ds2/internal/wordcount"
)

// --- Logical dataflow graphs (internal/dataflow) -----------------------

// Graph is a frozen logical dataflow DAG.
type Graph = dataflow.Graph

// GraphBuilder accumulates operators and edges before validation.
type GraphBuilder = dataflow.Builder

// Parallelism maps operator names to instance counts.
type Parallelism = dataflow.Parallelism

// OperatorRole classifies an operator as source, interior or sink.
type OperatorRole = dataflow.Role

// Operator roles.
const (
	RoleSource   = dataflow.RoleSource
	RoleOperator = dataflow.RoleOperator
	RoleSink     = dataflow.RoleSink
)

// NewGraphBuilder returns an empty graph builder.
func NewGraphBuilder() *GraphBuilder { return dataflow.NewBuilder() }

// LinearGraph builds a pipeline topology source → op1 → … → opN.
func LinearGraph(names ...string) (*Graph, error) { return dataflow.Linear(names...) }

// UniformParallelism assigns p instances to every non-source operator.
func UniformParallelism(g *Graph, p int) Parallelism {
	return dataflow.UniformParallelism(g, p)
}

// --- Instrumentation (internal/metrics) --------------------------------

// InstanceID identifies one parallel instance of an operator.
type InstanceID = metrics.InstanceID

// WindowMetrics holds one instance's counters over one window.
type WindowMetrics = metrics.WindowMetrics

// Rates bundles the true/observed processing/output rates (Eq. 1–4).
type Rates = metrics.Rates

// OperatorRates is the per-operator aggregate of Eq. 5–6.
type OperatorRates = metrics.OperatorRates

// Snapshot is the policy's input: per-operator rates plus source rates.
type Snapshot = metrics.Snapshot

// MetricsManager aggregates raw instrumentation events into windows.
type MetricsManager = metrics.Manager

// MetricsEvent is one raw instrumentation record.
type MetricsEvent = metrics.Event

// MetricsRepository stores snapshots for the scaling manager to poll.
type MetricsRepository = metrics.Repository

// Instrumentation event kinds.
const (
	EvRecordsProcessed = metrics.EvRecordsProcessed
	EvRecordsPushed    = metrics.EvRecordsPushed
	EvDeserialization  = metrics.EvDeserialization
	EvProcessing       = metrics.EvProcessing
	EvSerialization    = metrics.EvSerialization
	EvWaitingInput     = metrics.EvWaitingInput
	EvWaitingOutput    = metrics.EvWaitingOutput
)

// NewMetricsManager creates a manager cutting windows every interval
// seconds.
func NewMetricsManager(interval float64) (*MetricsManager, error) {
	return metrics.NewManager(interval)
}

// NewMetricsRepository creates a snapshot store retaining limit entries
// (0 = unbounded).
func NewMetricsRepository(limit int) *MetricsRepository {
	return metrics.NewRepository(limit)
}

// AggregateOperator folds instance windows into per-operator rates.
func AggregateOperator(windows []WindowMetrics) (OperatorRates, error) {
	return metrics.AggregateOperator(windows)
}

// BuildSnapshot aggregates per-instance windows plus source target
// rates into the policy's input.
func BuildSnapshot(t float64, windows []WindowMetrics, sourceRates map[string]float64) (Snapshot, error) {
	return metrics.BuildSnapshot(t, windows, sourceRates)
}

// MergeByInstance folds multiple windows per instance into one each.
func MergeByInstance(windows []WindowMetrics) ([]WindowMetrics, error) {
	return metrics.MergeByInstance(windows)
}

// --- Observability (internal/obs) ----------------------------------------

// ObsRegistry is a dependency-free metric registry with a Prometheus
// text-format (0.0.4) exposition. ds2d serves one at GET /metrics;
// pass the same registry as LiveJobConfig.Metrics and
// ScalingServerConfig.Metrics to fold runtime and service telemetry
// into one page.
type ObsRegistry = obs.Registry

// ObsLabel is one metric label pair.
type ObsLabel = obs.Label

// ObsHistogramOpts tunes a log-scale fixed-bucket histogram.
type ObsHistogramOpts = obs.HistogramOpts

// NewObsRegistry creates an empty metric registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ObsL builds one label pair.
func ObsL(name, value string) ObsLabel { return obs.L(name, value) }

// RegisterManagerDrops exposes a MetricsManager's dropped-event count
// (stale or malformed instrumentation events, otherwise only reachable
// programmatically) as a counter on the registry, so silent data loss
// in a §4.1 metrics pipeline is visible to scrapers.
func RegisterManagerDrops(reg *ObsRegistry, m *MetricsManager, labels ...ObsLabel) {
	reg.CounterFunc("ds2_manager_dropped_events_total",
		"Instrumentation events the MetricsManager discarded as stale or malformed.",
		func() float64 { return float64(m.Dropped()) }, labels...)
}

// --- The DS2 policy and scaling manager (internal/core) ----------------

// Policy is the DS2 decision function (Eq. 7–8).
type Policy = core.Policy

// PolicyConfig tunes the decision function.
type PolicyConfig = core.PolicyConfig

// Decision is one policy evaluation's output.
type Decision = core.Decision

// ScalingManager wraps a policy with the operational machinery of
// §4.2: policy intervals, warm-up, activation, target-rate correction,
// minor-change filtering, rollback and decision limits.
type ScalingManager = core.Manager

// ScalingManagerConfig carries the §4.2.1–4.2.2 knobs.
type ScalingManagerConfig = core.ManagerConfig

// ScalingAction is a rescale or rollback command.
type ScalingAction = core.Action

// Aggregation selects how activation-window decisions combine.
type Aggregation = core.Aggregation

// Activation-window aggregations.
const (
	AggLast   = core.AggLast
	AggMax    = core.AggMax
	AggMedian = core.AggMedian
)

// ErrInsufficientData reports that true rates are undefined for some
// operator so no decision can be made this interval.
var ErrInsufficientData = core.ErrInsufficientData

// NewPolicy creates a DS2 policy for a frozen graph.
func NewPolicy(g *Graph, cfg PolicyConfig) (*Policy, error) {
	return core.NewPolicy(g, cfg)
}

// NewScalingManager wraps a policy with operational state, starting
// from the given deployed configuration.
func NewScalingManager(p *Policy, initial Parallelism, cfg ScalingManagerConfig) (*ScalingManager, error) {
	return core.NewManager(p, initial, cfg)
}

// TotalWorkers converts a per-operator decision into the global worker
// count of execution models like Timely's (§4.3).
func TotalWorkers(d Decision) int { return core.TotalWorkers(d) }

// ConvergenceTrace records the configurations a controller walked
// through.
type ConvergenceTrace = core.ConvergenceTrace

// --- The streaming-engine simulator (internal/engine) ------------------

// Simulator is the deterministic fluid streaming-runtime simulator
// standing in for Flink, Heron and Timely Dataflow (see DESIGN.md).
type Simulator = engine.Engine

// SimulatorConfig tunes the simulated runtime.
type SimulatorConfig = engine.Config

// ExecutionMode selects the simulated execution model.
type ExecutionMode = engine.Mode

// Execution modes.
const (
	ModeFlink  = engine.ModeFlink
	ModeHeron  = engine.ModeHeron
	ModeTimely = engine.ModeTimely
)

// OperatorSpec is the performance model of one non-source operator.
type OperatorSpec = engine.OperatorSpec

// SourceSpec is the performance model of one source.
type SourceSpec = engine.SourceSpec

// WindowSpec makes an operator windowed (stash then fire).
type WindowSpec = engine.WindowSpec

// RateFn gives a source's target rate at virtual time t.
type RateFn = engine.RateFn

// IntervalStats is everything observed in one simulated interval.
type IntervalStats = engine.IntervalStats

// LatencySample is a weighted per-record latency observation.
type LatencySample = engine.LatencySample

// EpochLatency is a completed-epoch latency (Timely mode).
type EpochLatency = engine.EpochLatency

// NewSimulator builds a simulator for the graph.
func NewSimulator(g *Graph, specs map[string]OperatorSpec, srcs map[string]SourceSpec,
	initial Parallelism, cfg SimulatorConfig) (*Simulator, error) {
	return engine.New(g, specs, srcs, initial, cfg)
}

// ConstantRate returns a fixed-rate RateFn.
func ConstantRate(r float64) RateFn { return engine.ConstantRate(r) }

// StepRate returns a two-phase RateFn: `before` until t0, then `after`.
func StepRate(t0, before, after float64) RateFn { return engine.StepRate(t0, before, after) }

// SimulatorSnapshot aggregates interval stats into the policy's input.
func SimulatorSnapshot(st IntervalStats) (Snapshot, error) { return engine.Snapshot(st) }

// --- The unified control loop (internal/controlloop) --------------------

// Controller is the single reusable control loop of §4.2: it drives
// any Autoscaler over any Runtime, one policy interval at a time, and
// records a structured Trace.
type Controller = controlloop.Controller

// ControllerConfig tunes one Controller run: interval pacing, horizon,
// stability/convergence stopping rules and a live per-interval hook.
type ControllerConfig = controlloop.Config

// Runtime is one executable streaming job under control — the
// simulator today, a real engine integration tomorrow.
type Runtime = controlloop.Runtime

// Autoscaler is one scaling policy plus its operational state (DS2's
// scaling manager, Dhalion, a queueing model, ...).
type Autoscaler = controlloop.Autoscaler

// Observation is everything a Runtime reports for one policy interval.
type Observation = controlloop.Observation

// Trace is the structured record of one Controller run — the same
// schema for every autoscaler and runtime.
type Trace = controlloop.Trace

// TraceInterval is one row of a Trace: deployment, rates, latency
// quantiles, and the action taken at interval end.
type TraceInterval = controlloop.Interval

// SimulatorRuntime adapts a Simulator to the Runtime interface.
type SimulatorRuntime = controlloop.EngineRuntime

// NewController builds a control loop from a runtime, an autoscaler
// and a loop configuration.
func NewController(rt Runtime, as Autoscaler, cfg ControllerConfig) (*Controller, error) {
	return controlloop.New(rt, as, cfg)
}

// NewSimulatorRuntime wraps a simulator for use with a Controller.
// settle selects whether a rescale's redeployment pause is absorbed
// synchronously (discarding the polluted metric window) or rides
// through the following intervals as Busy observations.
func NewSimulatorRuntime(sim *Simulator, settle bool) *SimulatorRuntime {
	return controlloop.NewEngineRuntime(sim, settle)
}

// DS2Autoscaler adapts a ScalingManager to the Autoscaler interface.
func DS2Autoscaler(m *ScalingManager) Autoscaler { return controlloop.DS2Autoscaler(m) }

// HoldAutoscaler returns an Autoscaler that never rescales — the
// "no controller" baseline.
func HoldAutoscaler() Autoscaler { return controlloop.Hold() }

// LatencyQuantile computes a weighted latency quantile.
func LatencyQuantile(samples []LatencySample, q float64) float64 {
	return engine.LatencyQuantile(samples, q)
}

// --- The scaling service (internal/service, cmd/ds2d) -------------------

// ScalingServer is the ds2d scaling service: a registry of remote
// jobs, a metrics ingestion API, and one decision loop per job —
// the paper's Fig. 5 deployment architecture as a long-running
// network daemon. It implements http.Handler.
type ScalingServer = service.Server

// ScalingServerConfig tunes the service (per-job snapshot history,
// ingestion buffer bound, long-poll cap).
type ScalingServerConfig = service.ServerConfig

// WorkerInfo is one streamrt worker process registered with the
// scaling service's worker rendezvous (POST/GET/DELETE /workers).
type WorkerInfo = service.WorkerInfo

// ScalingClient speaks the scaling service's HTTP API from the engine
// side: register, report metrics, poll for actions, ack redeployments.
type ScalingClient = service.Client

// JobSpec registers one streaming job with the service: logical
// graph, deployed parallelism, autoscaler choice (ds2, dhalion,
// queueing, hold) and the decision-loop schedule.
type JobSpec = service.JobSpec

// JobOperator declares one vertex of a registered job's graph.
type JobOperator = service.JobOperator

// JobManagerConfig is the wire form of the DS2 manager knobs inside a
// JobSpec; JobDhalionConfig and JobQueueingConfig tune the baselines.
type JobManagerConfig = service.ManagerConfig

// JobDhalionConfig tunes a registered job's Dhalion controller.
type JobDhalionConfig = service.DhalionConfig

// JobQueueingConfig tunes a registered job's queueing controller.
type JobQueueingConfig = service.QueueingConfig

// JobStatus is one registered job's observable state.
type JobStatus = service.JobStatus

// JobState is a job's lifecycle state (running, finished, stopped,
// failed).
type JobState = service.JobState

// Job lifecycle states.
const (
	JobRunning  = service.StateRunning
	JobFinished = service.StateFinished
	JobStopped  = service.StateStopped
	JobFailed   = service.StateFailed
)

// MetricsReport is one instrumentation delivery from a running job to
// the scaling service: per-instance windows plus the coarse external
// signals, covering a span of job time.
type MetricsReport = service.Report

// ScalingCommand is a scaling action in flight between the service
// and the engine: polled via the action endpoint, acked by sequence
// number once the redeployment completes.
type ScalingCommand = service.ActionEnvelope

// SimulatedJob runs the streaming-engine simulator as a remote job
// under a scaling service — the engine side of Fig. 5 over HTTP.
type SimulatedJob = service.SimulatedJob

// RemoteJobRuntime implements the control loop's Runtime across the
// network boundary (the server side of the service).
type RemoteJobRuntime = service.RemoteRuntime

// ErrRuntimeStopped reports that a job under control was shut down
// cleanly rather than failed.
var ErrRuntimeStopped = controlloop.ErrStopped

// ErrReportBacklogged reports that a job's ingestion buffer is full;
// the reporter should back off and retry (HTTP 429 on the wire).
var ErrReportBacklogged = service.ErrBacklogged

// NewScalingServer creates the scaling service (serve it with
// net/http, or run cmd/ds2d).
func NewScalingServer(cfg ScalingServerConfig) *ScalingServer {
	return service.NewServer(cfg)
}

// NewScalingClient creates a client for a scaling service at baseURL.
// httpClient may be nil for a default.
func NewScalingClient(baseURL string, httpClient *http.Client) *ScalingClient {
	return service.NewClient(baseURL, httpClient)
}

// NewSimulatedJob wires a Simulator to a scaling service client.
// settle selects whether redeployments are settled synchronously
// before acking (Flink-style) or ride through reported intervals as
// busy (Heron-style).
func NewSimulatedJob(c *ScalingClient, sim *Simulator, spec JobSpec, settle bool) *SimulatedJob {
	return service.NewSimulatedJob(c, sim, spec, settle)
}

// SimulatorReport converts one simulator interval into a
// MetricsReport — the ingestion format of the scaling service.
func SimulatorReport(st IntervalStats, busy bool) MetricsReport {
	return service.ReportFromStats(st, busy)
}

// EpochQuantile computes an epoch-latency quantile.
func EpochQuantile(eps []EpochLatency, q float64) float64 {
	return engine.EpochQuantile(eps, q)
}

// --- Wall-clock instrumentation helpers (internal/metrics) ---------------

// WallClockDurations is the wall-clock split of one instance's elapsed
// time over one observation window (§3).
type WallClockDurations = metrics.Durations

// WallClockWindow builds a WindowMetrics from real time.Now()
// measurements, tolerating timer jitter: useful time exceeding the
// window by at most jitterTol (relative; <= 0 selects the default 25%)
// is scaled to fit instead of hard-failing validation.
func WallClockWindow(id InstanceID, window time.Duration, d WallClockDurations,
	processed, pushed int64, jitterTol float64) (WindowMetrics, error) {
	return metrics.WindowFromDurations(id, window, d, processed, pushed, jitterTol)
}

// --- The live dataflow runtime (internal/streamrt) -----------------------

// LivePipeline is a frozen executable dataflow: the logical graph plus
// executable source/operator specs. Unlike the Simulator, a LiveJob
// deployed from it actually runs the operators — goroutine per
// instance, bounded channels as backpressured queues, hash-partitioned
// keyed exchange — instrumented with wall-clock measurements.
type LivePipeline = streamrt.Pipeline

// LivePipelineBuilder accumulates sources, operators and edges.
type LivePipelineBuilder = streamrt.Builder

// LiveSourceSpec is one executable source: a deterministic generator
// paced at a target rate.
type LiveSourceSpec = streamrt.SourceSpec

// LiveOperatorSpec is one executable operator: a user function, an
// optional per-record cost, optional keyed state, an optional codec.
type LiveOperatorSpec = streamrt.OperatorSpec

// LiveEmit pushes one record downstream from inside a Process
// function.
type LiveEmit = streamrt.Emit

// LiveCodec encodes record values for a keyed exchange, making the
// serialization/deserialization split observable.
type LiveCodec = streamrt.Codec

// LiveStringCodec passes string values through []byte.
type LiveStringCodec = streamrt.StringCodec

// LiveWindowSpec makes a keyed live operator windowed: records
// accumulate into per-key processing-time panes (tumbling, or sliding
// with a Combine fold) and due windows fire on the worker loop. Window
// state snapshots and repartitions across rescales like any keyed
// state.
type LiveWindowSpec = streamrt.WindowSpec

// LiveWindowState is a windowed operator's per-key state: open pane
// aggregates plus the firing watermark. Stop returns it for residual
// inspection.
type LiveWindowState = streamrt.WindowState

// LiveJob is one deployed, running pipeline.
type LiveJob = streamrt.Job

// LiveJobConfig tunes a running LiveJob (queue bounds, backpressure
// threshold, jitter tolerance, latency sampling).
type LiveJobConfig = streamrt.Config

// LiveRuntime adapts a LiveJob to the Controller (controlloop.Runtime)
// and to the scaling service's engine side (AttachedEngine) at once.
type LiveRuntime = streamrt.Runtime

// LiveInterval is one observation window of a live job.
type LiveInterval = streamrt.Interval

// ErrLiveJobStopped reports an operation on a stopped live job.
var ErrLiveJobStopped = streamrt.ErrStopped

// NewLivePipeline returns an empty live-pipeline builder.
func NewLivePipeline() *LivePipelineBuilder { return streamrt.NewPipeline() }

// NewLiveJob deploys a pipeline at the given parallelism and starts
// every instance.
func NewLiveJob(p *LivePipeline, initial Parallelism, cfg LiveJobConfig) (*LiveJob, error) {
	return streamrt.NewJob(p, initial, cfg)
}

// NewLiveRuntime wraps a running live job for use with a Controller
// (or as the engine side of a scaling-service attachment).
func NewLiveRuntime(j *LiveJob) *LiveRuntime { return streamrt.NewRuntime(j) }

// AttachLiveJob registers a live job with a ds2d scaling service and
// returns the engine-side driver (report/poll/ack until the service
// finishes the decision loop).
func AttachLiveJob(c *ScalingClient, j *LiveJob, spec JobSpec) *AttachedJob {
	return streamrt.Attach(c, j, spec)
}

// --- Distributed live runtime (multi-process workers) --------------------

// LiveAppendEncoder is the optional Codec extension the batched
// exchange prefers: encode straight into a shared buffer, no
// per-record allocation. Over the network transport it is the hot
// path — records are appended directly into the socket frame.
type LiveAppendEncoder = streamrt.AppendEncoder

// LiveStateCodec serializes keyed operator state so rescale snapshots
// can cross process boundaries. Every keyed operator in a distributed
// deployment needs one.
type LiveStateCodec = streamrt.StateCodec

// LiveWorker is one worker process of a distributed live deployment:
// it serves named pipelines over the framed TCP transport and hosts
// whatever operator instances the cluster coordinator places on it.
type LiveWorker = streamrt.Worker

// LiveCluster coordinates a pipeline deployed across worker
// processes. It implements LiveEngine, so the Controller and ds2d
// drive it exactly like a single-process LiveJob.
type LiveCluster = streamrt.Cluster

// LiveEngine is the seam the control loop drives: pace and cut
// observation windows, redeploy, report the deployed configuration.
// Both *LiveJob and *LiveCluster implement it.
type LiveEngine = streamrt.Engine

// LiveLinkStats is one worker-to-worker link's cumulative traffic
// counters (bytes, frames, credit stalls per direction).
type LiveLinkStats = streamrt.LinkStats

// NewLiveWorker creates a worker process with the given cluster index
// serving the named pipelines. A non-nil registry exports the
// worker's runtime and per-link telemetry.
func NewLiveWorker(index int, pipes map[string]*LivePipeline, reg *ObsRegistry) *LiveWorker {
	return streamrt.NewWorker(index, pipes, reg)
}

// NewLiveCluster deploys a pipeline at the given parallelism across
// the worker processes at addrs and starts it.
func NewLiveCluster(p *LivePipeline, workload string, initial Parallelism, addrs []string, cfg LiveJobConfig) (*LiveCluster, error) {
	return streamrt.NewCluster(p, workload, initial, addrs, cfg)
}

// PlanLivePlacement maps operator instances to worker processes the
// way the cluster coordinator does: instance k to worker k mod W.
func PlanLivePlacement(par Parallelism, workers int) map[string][]int {
	return streamrt.PlanPlacement(par, workers)
}

// NewLiveEngineRuntime wraps any live engine — in particular a
// *LiveCluster — for the Controller or a ds2d attachment.
func NewLiveEngineRuntime(e LiveEngine) *LiveRuntime {
	return streamrt.NewEngineRuntime(e)
}

// AttachLiveEngine registers any live engine with a ds2d scaling
// service — the multi-process counterpart of AttachLiveJob.
func AttachLiveEngine(c *ScalingClient, eng LiveEngine, spec JobSpec) *AttachedJob {
	return streamrt.AttachEngine(c, eng, spec)
}

// AttachedEngine is the engine side of Fig. 5 for any locally running
// job (a LiveRuntime, or a custom integration).
type AttachedEngine = service.AttachedEngine

// AttachedJob drives an AttachedEngine against a scaling service.
type AttachedJob = service.AttachedJob

// NewAttachedJob wires any engine to a scaling service client.
func NewAttachedJob(c *ScalingClient, eng AttachedEngine, spec JobSpec) *AttachedJob {
	return service.NewAttachedJob(c, eng, spec)
}

// --- Typed pipelines & durable checkpoints (internal/streamrt) -----------

// LiveTypedBuilder accumulates typed sources, operators and edges;
// Compile type-checks the whole graph (edge compatibility, codec
// completeness on distributed deployments, window/key rules) and
// lowers it to a runnable LivePipeline.
type LiveTypedBuilder = streamrt.TypedBuilder

// LiveTypedEmit pushes typed records downstream from a typed Process
// or Fire function.
type LiveTypedEmit[Out any] = streamrt.TypedEmit[Out]

// LiveTypedSource is the typed counterpart of LiveSourceSpec.
type LiveTypedSource[V any] = streamrt.TypedSource[V]

// LiveTypedOperator is the typed counterpart of LiveOperatorSpec: it
// consumes In, emits Out, and (when Keyed) keeps per-key state S.
type LiveTypedOperator[In, Out, S any] = streamrt.TypedOperator[In, Out, S]

// LiveTypedWindow is the typed counterpart of LiveWindowSpec.
type LiveTypedWindow[S, Out any] = streamrt.TypedWindow[S, Out]

// NewLiveTypedPipeline returns an empty typed pipeline builder.
func NewLiveTypedPipeline() *LiveTypedBuilder { return streamrt.NewTypedPipeline() }

// AddLiveTypedSource registers a typed source with a typed builder.
func AddLiveTypedSource[V any](tb *LiveTypedBuilder, name string, spec LiveTypedSource[V]) *LiveTypedBuilder {
	return streamrt.AddTypedSource(tb, name, spec)
}

// AddLiveTypedOperator registers a typed operator with a typed builder.
func AddLiveTypedOperator[In, Out, S any](tb *LiveTypedBuilder, name string, spec LiveTypedOperator[In, Out, S]) *LiveTypedBuilder {
	return streamrt.AddTypedOperator(tb, name, spec)
}

// LiveCheckpointStore persists encoded savepoints by name; Save must
// publish atomically with respect to Load.
type LiveCheckpointStore = streamrt.CheckpointStore

// LiveMemoryStore is an in-process checkpoint store (tests, rescues).
type LiveMemoryStore = streamrt.MemoryStore

// LiveDirStore is a directory-backed checkpoint store using the
// write-fsync-rename atomic-publish idiom.
type LiveDirStore = streamrt.DirStore

// LiveSavepointer is the savepoint surface *LiveJob and *LiveCluster
// share: drain, persist to the store under name, restart.
type LiveSavepointer = streamrt.Savepointer

// SavepointEngine is the optional AttachedEngine extension for engines
// that can cut durable checkpoints on the service's request.
type SavepointEngine = service.SavepointEngine

// SavepointRecord is the scaling service's record of one completed
// savepoint request.
type SavepointRecord = service.SavepointRecord

// NewLiveMemoryStore returns an empty in-memory checkpoint store.
func NewLiveMemoryStore() *LiveMemoryStore { return streamrt.NewMemoryStore() }

// NewLiveDirStore creates dir if needed and returns a store over it.
func NewLiveDirStore(dir string) (*LiveDirStore, error) { return streamrt.NewDirStore(dir) }

// NewLiveJobFromSavepoint deploys a fresh single-process live job from
// a savepoint: keyed state repartitions under initial (which may
// differ from the savepoint's parallelism) and source counters resume
// the sequence space exactly where the cut left it.
func NewLiveJobFromSavepoint(p *LivePipeline, initial Parallelism, cfg LiveJobConfig, store LiveCheckpointStore, name string) (*LiveJob, error) {
	return streamrt.NewJobFromSavepoint(p, initial, cfg, store, name)
}

// NewLiveClusterFromSavepoint deploys a distributed live cluster from
// a savepoint; the worker count must match the savepoint's so source
// sequence striping lines up.
func NewLiveClusterFromSavepoint(p *LivePipeline, workload string, initial Parallelism, addrs []string, cfg LiveJobConfig, store LiveCheckpointStore, name string) (*LiveCluster, error) {
	return streamrt.NewClusterFromSavepoint(p, workload, initial, addrs, cfg, store, name)
}

// --- Live wordcount (internal/wordcount) ---------------------------------

// LiveWordCountConfig parameterizes the word-count pipeline on the
// live runtime: rates (with an optional step change), zipf key skew,
// per-record costs, and an optional record limit.
type LiveWordCountConfig = wordcount.LiveConfig

// Live wordcount operator names.
const (
	LiveWordCountSource = wordcount.LiveSource
	LiveWordCountSplit  = wordcount.LiveSplit
	LiveWordCountCount  = wordcount.LiveCount
)

// LiveWordCount builds the three-stage word-count pipeline (skewed
// zipf sentence source → splitter → keyed counter) on the live
// runtime.
func LiveWordCount(cfg LiveWordCountConfig) (*LivePipeline, error) {
	return wordcount.Live(cfg)
}

// LiveWordCountOptimal returns the analytically optimal configuration
// at a given source rate — what DS2 should converge to.
func LiveWordCountOptimal(cfg LiveWordCountConfig, rate float64) Parallelism {
	return wordcount.LiveOptimal(cfg, rate)
}

// LiveWordCountExpectedCounts replays the deterministic sentence
// stream offline — the oracle for state-preservation checks.
func LiveWordCountExpectedCounts(cfg LiveWordCountConfig, n int64) map[string]int {
	return wordcount.LiveExpectedCounts(cfg, n)
}

// --- Live Nexmark (internal/nexmark) -------------------------------------

// LiveNexmarkConfig parameterizes one live Nexmark query: rates (with
// an optional step), seed, source bound, per-stage pacing costs and
// window shape.
type LiveNexmarkConfig = nexmark.LiveQueryConfig

// LiveNexmarkWorkload bundles a live Nexmark query's executable
// pipeline with its control metadata (initial/optimal configurations,
// main operator).
type LiveNexmarkWorkload = nexmark.LiveWorkload

// LiveNexmarkQueryNames lists the queries ported to the live runtime
// (q1, q2, q3, q5, q8).
func LiveNexmarkQueryNames() []string { return nexmark.LiveQueryNames() }

// LiveNexmarkQuery builds the named Nexmark query as a really-
// executing pipeline on the live runtime.
func LiveNexmarkQuery(name string, cfg LiveNexmarkConfig) (*LiveNexmarkWorkload, error) {
	return nexmark.LiveQuery(name, cfg)
}

// LiveNexmarkCalibratedCost derives a live pacing cost for a query's
// main stage from the measured reference-implementation calibration
// (see cmd/nexmark-calibrate), scaled by scale.
func LiveNexmarkCalibratedCost(query string, n int, scale float64) (time.Duration, error) {
	return nexmark.LiveCalibratedCost(query, n, scale)
}

// Live Nexmark sink aggregates — the per-key states a stopped live
// query's Stop() returns, and what the LiveNexmarkExpected* oracles
// produce.
type (
	// LiveNexmarkQ1Agg is Q1's per-auction converted-bid count and
	// euro checksum. The live Q1 sink keeps it by pointer (the hot
	// path mutates it in place), so Stop() returns *LiveNexmarkQ1Agg.
	LiveNexmarkQ1Agg = nexmark.Q1Agg
	// LiveNexmarkQ3Agg is Q3's per-seller join-match count and
	// auction-id checksum.
	LiveNexmarkQ3Agg = nexmark.Q3Agg
	// LiveNexmarkQ5Agg is Q5's per-auction fired-window count and
	// total reported bids.
	LiveNexmarkQ5Agg = nexmark.Q5Agg
	// LiveNexmarkQ8Pane is Q8's per-seller tumbling-window join pane.
	LiveNexmarkQ8Pane = nexmark.Q8Pane
)
